//! Occupancy-based models of the L1<->L2 crossbar and the DRAM channel.
//!
//! Both are modeled as a bandwidth-limited pipe with a fixed wire latency.
//! Bandwidth is accounted with *epoch buckets*: time is divided into short
//! epochs, each with `epoch_cycles x bytes_per_cycle` bytes of capacity; a
//! transfer consumes capacity starting at its submission epoch, spilling
//! into later epochs when the pipe is saturated. Unlike a single
//! `busy_until` pointer, this is insensitive to the order in which
//! transfers are *scheduled* (the analytic hierarchy schedules a response
//! far in the future before it schedules the next request "now"), while
//! still enforcing the paper's 57 GB/s crossbar and 16 GB/s memory-bus
//! limits under load.

use dws_engine::stats::Counter;
use dws_engine::Cycle;

/// Cycles per bandwidth-accounting epoch.
const EPOCH_CYCLES: u64 = 32;

/// A bandwidth-limited, fixed-latency link.
#[derive(Debug, Clone)]
pub struct Link {
    latency: u64,
    bytes_per_cycle: u64,
    /// Epoch index -> bytes consumed, sorted by epoch. Live epochs number
    /// in the dozens, so a binary-searched vector beats a tree (or hash)
    /// on this once-per-transfer path.
    buckets: Vec<(u64, u64)>,
    /// Transfers performed.
    pub transfers: Counter,
    /// Bytes moved.
    pub bytes_moved: Counter,
    /// Total cycles transfers were delayed beyond their uncontended time.
    pub queue_cycles: Counter,
}

impl Link {
    /// Creates a link with `latency` cycles of wire delay and
    /// `bytes_per_cycle` of bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: u64, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive");
        Link {
            latency,
            bytes_per_cycle,
            buckets: Vec::new(),
            transfers: Counter::new(),
            bytes_moved: Counter::new(),
            queue_cycles: Counter::new(),
        }
    }

    /// Schedules a transfer of `bytes` submitted at `now`; returns the cycle
    /// at which the payload arrives at the far side.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.transfers.incr();
        self.bytes_moved.add(bytes);
        let cap = EPOCH_CYCLES * self.bytes_per_cycle;
        let mut epoch = now.raw() / EPOCH_CYCLES;
        let mut remaining = bytes;
        let mut last_epoch = epoch;
        let mut last_used = 0u64;
        // Position of `epoch` in the sorted bucket list; consecutive epochs
        // continue from here without re-searching. Submissions are nearly
        // monotonic, so check the tail before binary-searching.
        let mut pos = match self.buckets.last() {
            None => 0,
            Some(&(e, _)) if epoch > e => self.buckets.len(),
            Some(&(e, _)) if epoch == e => self.buckets.len() - 1,
            _ => self.buckets.partition_point(|&(e, _)| e < epoch),
        };
        while remaining > 0 {
            if self.buckets.get(pos).map(|&(e, _)| e) != Some(epoch) {
                self.buckets.insert(pos, (epoch, 0));
            }
            let used = &mut self.buckets[pos].1;
            let avail = cap.saturating_sub(*used);
            if avail > 0 {
                let take = avail.min(remaining);
                *used += take;
                remaining -= take;
                last_epoch = epoch;
                last_used = *used;
            }
            if remaining > 0 {
                epoch += 1;
                pos += 1;
            }
        }
        // Uncontended completion plus any contention spill.
        let ideal_done = now + bytes.div_ceil(self.bytes_per_cycle);
        let bucket_done = Cycle(
            last_epoch * EPOCH_CYCLES + last_used.div_ceil(self.bytes_per_cycle).min(EPOCH_CYCLES),
        );
        let done = ideal_done.max(bucket_done);
        self.queue_cycles.add(done - ideal_done);
        // Prune ancient epochs; submission times are (nearly) monotonic.
        if self.buckets.len() > 4096 {
            let cutoff = (now.raw() / EPOCH_CYCLES).saturating_sub(64);
            let keep_from = self.buckets.partition_point(|&(e, _)| e < cutoff);
            self.buckets.drain(..keep_from);
        }
        done + self.latency
    }
}

/// The L1<->L2 crossbar (Table 3: 300 MHz, 57 GB/s; expressed here in WPU
/// cycles and bytes/cycle).
pub type Crossbar = Link;

/// The DRAM channel: a [`Link`] for the 16 GB/s memory bus plus the fixed
/// 100-cycle array access latency, with requests pipelined (the paper:
/// "the memory controller is able to pipeline the requests").
#[derive(Debug, Clone)]
pub struct Dram {
    bus: Link,
    access_latency: u64,
    /// Number of DRAM accesses (each costs 220 nJ in the energy model).
    pub accesses: Counter,
}

impl Dram {
    /// Creates a DRAM channel.
    pub fn new(access_latency: u64, bus_bytes_per_cycle: u64) -> Self {
        Dram {
            bus: Link::new(0, bus_bytes_per_cycle),
            access_latency,
            accesses: Counter::new(),
        }
    }

    /// Schedules a line transfer of `bytes` starting at `now`; returns the
    /// completion cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.accesses.incr();
        let bus_done = self.bus.transfer(now, bytes);
        bus_done + self.access_latency
    }

    /// Cycles spent queued on the memory bus so far.
    pub fn queue_cycles(&self) -> u64 {
        self.bus.queue_cycles.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer_is_latency_plus_occupancy() {
        let mut l = Link::new(4, 57);
        // 128 bytes at 57 B/cyc -> 3 cycles occupancy + 4 latency.
        assert_eq!(l.transfer(Cycle(100), 128), Cycle(107));
        assert_eq!(l.transfers.get(), 1);
        assert_eq!(l.bytes_moved.get(), 128);
        assert_eq!(l.queue_cycles.get(), 0);
    }

    #[test]
    fn saturation_spills_to_later_epochs() {
        let mut l = Link::new(0, 4); // 4 B/cyc -> 128 B per 32-cycle epoch
                                     // Fill the first epoch completely.
        assert_eq!(l.transfer(Cycle(0), 128), Cycle(32));
        // The next transfer must spill into the second epoch.
        let done = l.transfer(Cycle(0), 128);
        assert!(done > Cycle(32), "second transfer spills: {done:?}");
        assert!(l.queue_cycles.get() > 0);
    }

    #[test]
    fn out_of_order_submission_does_not_block_earlier_traffic() {
        let mut l = Link::new(0, 57);
        // A transfer scheduled far in the future...
        let far = l.transfer(Cycle(10_000), 128);
        assert!(far >= Cycle(10_000));
        // ...must not delay one submitted now.
        let near = l.transfer(Cycle(0), 128);
        assert_eq!(near, Cycle(3), "near transfer is uncontended");
    }

    #[test]
    fn bandwidth_is_conserved_under_bursts() {
        let mut l = Link::new(0, 16);
        // 100 lines of 128 B at 16 B/cyc = 800 cycles of occupancy minimum.
        let mut last = Cycle(0);
        for _ in 0..100 {
            last = last.max(l.transfer(Cycle(0), 128));
        }
        assert!(
            last >= Cycle(800),
            "burst must take at least 800 cycles, got {last:?}"
        );
    }

    #[test]
    fn dram_adds_access_latency() {
        let mut d = Dram::new(100, 16);
        // 128 bytes at 16 B/cyc = 8 cycles bus + 100 access.
        assert_eq!(d.access(Cycle(0), 128), Cycle(108));
        assert_eq!(d.accesses.get(), 1);
        // Pipelined: the second access queues only on the bus.
        let second = d.access(Cycle(0), 128);
        assert!(second > Cycle(108));
        assert!(d.queue_cycles() > 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        Link::new(1, 0);
    }
}
