//! Memory-system configuration, defaulting to the paper's Table 3.

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set. Use [`CacheConfig::fully_associative`] for a single set.
    pub assoc: usize,
    /// Line size in bytes (128 in the paper).
    pub line_bytes: u64,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
    /// Number of MSHR entries.
    pub mshrs: usize,
    /// Maximum requests merged into a single MSHR entry.
    pub mshr_targets: usize,
    /// Number of banks (L1 D-caches are banked per SIMD lane).
    pub banks: usize,
}

impl CacheConfig {
    /// The paper's L1 D-cache: 32 KB, 8-way, 128 B lines, 3-cycle hit,
    /// 32 MSHRs each hosting up to 32 requests, banked per lane.
    pub fn paper_l1d(lanes: usize) -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 128,
            hit_latency: 3,
            mshrs: 32,
            mshr_targets: 32,
            banks: lanes.max(1),
        }
    }

    /// The paper's L1 I-cache: 16 KB, 4-way, 128 B lines, 1-cycle hit.
    pub fn paper_l1i() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 4,
            line_bytes: 128,
            hit_latency: 1,
            mshrs: 4,
            mshr_targets: 8,
            banks: 1,
        }
    }

    /// The paper's L2: 4096 KB, 16-way, 128 B lines, 30-cycle lookup,
    /// 256 MSHRs each hosting up to 64 requests.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 4096 * 1024,
            assoc: 16,
            line_bytes: 128,
            hit_latency: 30,
            mshrs: 256,
            mshr_targets: 64,
            banks: 1,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `assoc * line_bytes`, or a non-power-of-two set count).
    pub fn num_sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.assoc > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            self.size_bytes % self.line_bytes,
            0,
            "capacity must be a whole number of lines"
        );
        assert_eq!(
            lines as usize % self.assoc,
            0,
            "lines must divide evenly into ways"
        );
        let sets = lines as usize / self.assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Converts this configuration to a fully-associative one of the same
    /// capacity (used by the Figure 1b/15/18 sweeps).
    pub fn fully_associative(mut self) -> Self {
        self.assoc = (self.size_bytes / self.line_bytes) as usize;
        self
    }

    /// Returns a copy with a different capacity.
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different associativity.
    pub fn with_assoc(mut self, assoc: usize) -> Self {
        self.assoc = assoc;
        self
    }

    /// Returns a copy with a different hit latency.
    pub fn with_hit_latency(mut self, lat: u64) -> Self {
        self.hit_latency = lat;
        self
    }
}

/// Whole-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of private L1 D-caches (one per WPU; 4 in the paper).
    pub n_l1s: usize,
    /// L1 D-cache geometry.
    pub l1d: CacheConfig,
    /// L1 I-cache geometry.
    pub l1i: CacheConfig,
    /// Shared L2 geometry (its `hit_latency` is the L2 lookup latency the
    /// Figure 16 sweep varies from 10 to 300 cycles).
    pub l2: CacheConfig,
    /// DRAM access latency in cycles (100 in the paper).
    pub dram_latency: u64,
    /// DRAM bus bandwidth in bytes per WPU cycle (16 GB/s at 1 GHz = 16).
    pub dram_bytes_per_cycle: u64,
    /// Crossbar wire latency L1<->L2 in cycles.
    pub crossbar_latency: u64,
    /// Crossbar bandwidth in bytes per WPU cycle (57 GB/s at 1 GHz = 57).
    pub crossbar_bytes_per_cycle: u64,
    /// Extra per-conflict queueing delay at an L1 bank (1 cycle).
    pub bank_conflict_penalty: u64,
}

impl MemConfig {
    /// The paper's Table 3 configuration for `n_l1s` WPUs with `lanes`
    /// SIMD lanes each.
    pub fn paper(n_l1s: usize, lanes: usize) -> Self {
        MemConfig {
            n_l1s,
            l1d: CacheConfig::paper_l1d(lanes),
            l1i: CacheConfig::paper_l1i(),
            l2: CacheConfig::paper_l2(),
            dram_latency: 100,
            dram_bytes_per_cycle: 16,
            crossbar_latency: 4,
            crossbar_bytes_per_cycle: 57,
            bank_conflict_penalty: 1,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper(4, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1d_geometry() {
        let c = CacheConfig::paper_l1d(16);
        assert_eq!(c.num_sets(), 32 * 1024 / 128 / 8);
        assert_eq!(c.banks, 16);
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheConfig::paper_l1d(16).fully_associative();
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.assoc as u64, 32 * 1024 / 128);
    }

    #[test]
    fn with_builders() {
        let c = CacheConfig::paper_l1d(8)
            .with_size(8 * 1024)
            .with_assoc(4)
            .with_hit_latency(5);
        assert_eq!(c.size_bytes, 8 * 1024);
        assert_eq!(c.assoc, 4);
        assert_eq!(c.hit_latency, 5);
        assert_eq!(c.num_sets(), 8 * 1024 / 128 / 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheConfig {
            size_bytes: 3 * 128 * 2,
            assoc: 2,
            line_bytes: 128,
            hit_latency: 1,
            mshrs: 1,
            mshr_targets: 1,
            banks: 1,
        }
        .num_sets();
    }

    #[test]
    fn default_is_paper() {
        let m = MemConfig::default();
        assert_eq!(m.n_l1s, 4);
        assert_eq!(m.l2.hit_latency, 30);
        assert_eq!(m.dram_latency, 100);
    }
}
