//! The assembled memory system: private banked L1s, crossbar, shared
//! inclusive L2 with a MESI directory, and DRAM.
//!
//! See the crate-level documentation for the modeling approach. The
//! interface a WPU uses:
//!
//! 1. [`MemorySystem::warp_access`] — present one warp memory instruction's
//!    lane accesses; receive per-lane [`AccessOutcome`]s. Mixed hit/miss
//!    outcomes are exactly the *memory divergence* events that trigger
//!    dynamic warp subdivision.
//! 2. [`MemorySystem::drain_completions`] — each cycle, collect requests
//!    whose data arrived, and wake the threads waiting on them.

use crate::cache::{CacheArray, MesiState};
use crate::config::{CacheConfig, MemConfig};
use crate::link::{Crossbar, Dram};
use crate::mshr::{MshrFile, MshrId};
use dws_engine::fault::{FaultInjector, FaultPlan};
use dws_engine::stats::{Counter, Distribution};
use dws_engine::{Cycle, EventQueue, FastHashMap, WakeHeap};

/// Size of a coherence/request control message on the crossbar, in bytes.
const CTRL_MSG_BYTES: u64 = 8;

/// Salt separating the memory system's fault-draw stream from the WPUs'.
const MEM_FAULT_SALT: u64 = 0x4d45_4d31;

/// Globally unique identifier of one lane's outstanding memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read one word.
    Load,
    /// Write one word (write-back, write-allocate).
    Store,
}

/// One lane's access within a warp memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    /// Lane index within the warp (0-based).
    pub lane: usize,
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

/// Outcome of one lane's access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit; the value is available at `ready_at`.
    Hit {
        /// Cycle at which the data is available (includes bank queueing).
        ready_at: Cycle,
    },
    /// The access missed; completion arrives later tagged with `request`.
    Miss {
        /// Token delivered by [`MemorySystem::drain_completions`].
        request: RequestId,
    },
}

/// Per-lane outcome, aligned with the input access order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    /// Lane index (copied from the request).
    pub lane: usize,
    /// Hit or miss.
    pub outcome: AccessOutcome,
}

/// A completed miss, delivered when its fill arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Which L1 (== WPU) the request belonged to.
    pub l1: usize,
    /// The request token returned by [`MemorySystem::warp_access`].
    pub request: RequestId,
    /// The cycle the fill completed.
    pub at: Cycle,
}

/// Directory entry for an L2-resident line.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of L1s holding the line.
    sharers: u32,
    /// L1 holding the line in M/E, if any.
    owner: Option<usize>,
}

struct L1 {
    array: CacheArray,
    mshrs: MshrFile,
    /// Mirror of this L1's outstanding fill times (a per-L1 view of the
    /// global event list), so the run loop can wake one WPU at a time.
    fills: WakeHeap<()>,
    /// Bumped on every array/MSHR mutation. An identical warp access
    /// re-attempted against an unchanged generation must reach the same
    /// accept/reject decision, so rejected groups can skip the re-probe
    /// while they spin on full MSHRs ([`MemorySystem::l1_generation`]).
    gen: u64,
}

struct L2 {
    array: CacheArray,
    dir: FastHashMap<u64, DirEntry>,
    /// Analytic MSHR occupancy: when each entry frees.
    mshr_free_at: Vec<Cycle>,
    /// Lines currently being fetched from DRAM -> fill time, so concurrent
    /// requesters observe the in-flight fill instead of a fresh DRAM trip.
    inflight: FastHashMap<u64, Cycle>,
    cfg: CacheConfig,
}

/// Aggregate counters for the whole memory system (consumed by the energy
/// model and the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1 D-cache lane accesses (after intra-line coalescing: unique lines).
    pub l1d_line_accesses: Counter,
    /// L1 D-cache lane-level accesses before coalescing.
    pub l1d_lane_accesses: Counter,
    /// L1 D-cache line-level hits.
    pub l1d_hits: Counter,
    /// L1 D-cache line-level misses (primary; secondary merges excluded).
    pub l1d_misses: Counter,
    /// Misses merged into an existing MSHR.
    pub l1d_mshr_merges: Counter,
    /// Store upgrades of Shared lines.
    pub upgrades: Counter,
    /// Warp accesses rejected for lack of MSHR resources.
    pub rejections: Counter,
    /// Cycles lost to L1 bank conflicts (summed over lanes).
    pub bank_conflict_cycles: Counter,
    /// Requests processed by the L2.
    pub l2_accesses: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// L2 misses (DRAM fetches, including those that piggyback in-flight).
    pub l2_misses: Counter,
    /// Dirty L1 lines written back to L2.
    pub l1_writebacks: Counter,
    /// Dirty L2 lines written back to DRAM.
    pub l2_writebacks: Counter,
    /// Invalidations sent to L1s by the directory.
    pub invalidations: Counter,
    /// Owner flushes (dirty data forwarded through the L2).
    pub owner_flushes: Counter,
    /// L1 instruction-cache fetches.
    pub l1i_fetches: Counter,
    /// L1 instruction-cache misses.
    pub l1i_misses: Counter,
    /// DRAM line accesses.
    pub dram_accesses: Counter,
    /// Bytes moved over the crossbar.
    pub crossbar_bytes: Counter,
    /// Memory-level parallelism: the number of in-flight line fills,
    /// sampled whenever a new L1 miss is issued (the paper's MLP argument:
    /// DWS raises this by letting run-ahead splits issue misses early).
    pub mlp: Distribution,
}

/// Reusable per-call buffers for [`MemorySystem::warp_access_into`]. These
/// keep the per-instruction hot path free of heap allocation: each vector
/// is `take`n at entry, cleared, and put back at exit, so capacity persists
/// across calls.
#[derive(Default)]
struct WarpScratch {
    /// Distinct lines touched this access: `(line, any_store)`.
    groups: Vec<(u64, bool)>,
    /// For each access index, the index of its line group.
    lane_group: Vec<usize>,
    /// Per-group lane count, filled during grouping.
    group_count: Vec<u32>,
    /// Per-group tag lookup from the feasibility pass `(state, way)`, so
    /// the apply pass replays it without re-scanning the set.
    group_info: Vec<(MesiState, Option<usize>)>,
    /// Prefix sums of `group_count` (`groups.len() + 1` entries).
    group_start: Vec<u32>,
    /// Write cursors for the counting sort into `group_lanes`.
    group_cursor: Vec<u32>,
    /// Access indices counting-sorted by group: group `g`'s lanes are
    /// `group_lanes[group_start[g]..group_start[g + 1]]`, in input order.
    group_lanes: Vec<u32>,
    /// Distinct words in first-appearance order, with their bank delay.
    word_delay: Vec<(u64, u64)>,
    /// Distinct words seen so far per bank.
    bank_count: Vec<u64>,
    /// Per-access bank-queueing delay in cycles.
    lane_delay: Vec<u64>,
}

/// The full memory system shared by all WPUs.
pub struct MemorySystem {
    cfg: MemConfig,
    l1s: Vec<L1>,
    l2: L2,
    xbar: Crossbar,
    dram: Dram,
    events: EventQueue<(usize, MshrId)>,
    next_req: u64,
    stats: MemStats,
    scratch: WarpScratch,
    /// `log2(l1d.line_bytes)` when that is a power of two, so the per-lane
    /// address-to-line conversion is a shift instead of a 64-bit divide.
    l1d_shift: Option<u32>,
    /// Deterministic timing-fault injection; `None` outside chaos runs.
    fault: Option<FaultInjector>,
    /// Run the fill-mirror invariant check even in release builds
    /// (`DWS_SANITIZE=1`); latched at construction.
    strict_checks: bool,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("n_l1s", &self.l1s.len())
            .field("pending_fills", &self.events.len())
            .finish()
    }
}

impl MemorySystem {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: MemConfig) -> Self {
        let l1s = (0..cfg.n_l1s)
            .map(|_| L1 {
                array: CacheArray::new(&cfg.l1d),
                mshrs: MshrFile::new(cfg.l1d.mshrs, cfg.l1d.mshr_targets),
                fills: WakeHeap::new(),
                gen: 0,
            })
            .collect();
        let l2 = L2 {
            array: CacheArray::new(&cfg.l2),
            dir: FastHashMap::default(),
            mshr_free_at: vec![Cycle::ZERO; cfg.l2.mshrs],
            inflight: FastHashMap::default(),
            cfg: cfg.l2,
        };
        MemorySystem {
            l1s,
            l2,
            xbar: Crossbar::new(cfg.crossbar_latency, cfg.crossbar_bytes_per_cycle),
            dram: Dram::new(cfg.dram_latency, cfg.dram_bytes_per_cycle),
            events: EventQueue::new(),
            next_req: 0,
            stats: MemStats::default(),
            scratch: WarpScratch::default(),
            l1d_shift: cfg
                .l1d
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.l1d.line_bytes.trailing_zeros()),
            fault: None,
            strict_checks: cfg!(debug_assertions) || dws_engine::sanitize::enabled(),
            cfg,
        }
    }

    /// Arms deterministic fault injection. Call before any traffic flows;
    /// a zero-fault plan installs nothing and leaves timing untouched.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan.injector(MEM_FAULT_SALT);
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn line_of(&self, addr: u64) -> u64 {
        match self.l1d_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.l1d.line_bytes,
        }
    }

    fn fresh_request(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Presents one warp memory instruction (the active lanes' addresses)
    /// to L1 `l1`. Returns per-lane outcomes in input order, or `None` if
    /// MSHR resources are exhausted — the WPU must retry the instruction
    /// next cycle (no state is modified in that case).
    ///
    /// # Panics
    ///
    /// Panics if `l1` is out of range or `accesses` is empty.
    pub fn warp_access(
        &mut self,
        now: Cycle,
        l1: usize,
        accesses: &[LaneAccess],
    ) -> Option<Vec<LaneOutcome>> {
        let mut out = Vec::new();
        self.warp_access_into(now, l1, accesses, &mut out)
            .then_some(out)
    }

    /// Allocation-free form of [`warp_access`](Self::warp_access): outcomes
    /// are written into the caller-owned `out` (cleared first, then one
    /// entry per access in input order). Returns `false` — with `out` left
    /// empty and no state modified — when MSHR resources are exhausted and
    /// the WPU must retry next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `l1` is out of range or `accesses` is empty.
    pub fn warp_access_into(
        &mut self,
        now: Cycle,
        l1: usize,
        accesses: &[LaneAccess],
        out: &mut Vec<LaneOutcome>,
    ) -> bool {
        assert!(!accesses.is_empty(), "warp access with no lanes");
        assert!(l1 < self.l1s.len(), "L1 index out of range");
        out.clear();

        // Borrow the scratch buffers out of `self` so the loops below can
        // still use `self` freely; put back (with capacity intact) at exit.
        let mut s = std::mem::take(&mut self.scratch);
        s.groups.clear();
        s.lane_group.clear();
        s.group_count.clear();
        s.group_info.clear();
        s.word_delay.clear();
        s.lane_delay.clear();

        // Group lanes by line, preserving first-appearance order. Warp
        // width is small (<= 64), so linear scans beat hashing here.
        for a in accesses {
            let line = self.line_of(a.addr);
            let is_store = a.kind == AccessKind::Store;
            match s.groups.iter_mut().position(|(l, _)| *l == line) {
                Some(g) => {
                    s.groups[g].1 |= is_store;
                    s.group_count[g] += 1;
                    s.lane_group.push(g);
                }
                None => {
                    s.groups.push((line, is_store));
                    s.group_count.push(1);
                    s.lane_group.push(s.groups.len() - 1);
                }
            }
        }

        // Counting sort of access indices by group, so the apply pass can
        // walk each group's lanes as a slice instead of filtering the whole
        // warp once per group.
        s.group_start.clear();
        s.group_start.push(0);
        let mut acc = 0u32;
        for &c in &s.group_count {
            acc += c;
            s.group_start.push(acc);
        }
        s.group_cursor.clear();
        s.group_cursor
            .extend_from_slice(&s.group_start[..s.groups.len()]);
        s.group_lanes.clear();
        s.group_lanes.resize(accesses.len(), 0);
        for (i, &g) in s.lane_group.iter().enumerate() {
            s.group_lanes[s.group_cursor[g] as usize] = i as u32;
            s.group_cursor[g] += 1;
        }

        // Fault injection: transiently withhold MSHR entries, forcing
        // spurious back-pressure rejections. Only while fills are already
        // outstanding (`in_use > 0`): an outstanding fill guarantees the
        // L1 generation will bump, expiring the caller's rejection memo
        // and forcing a fresh draw, so forward progress is preserved.
        let withheld = match &mut self.fault {
            Some(f) if self.l1s[l1].mshrs.in_use() > 0 => f.mshr_withhold(),
            _ => 0,
        };

        let accepted = 'body: {
            // Feasibility check (no mutation): count fresh MSHRs needed and
            // verify merge capacity. The tag lookup records the hit way so
            // the apply pass can replay the probe without re-scanning.
            {
                let l1c = &self.l1s[l1];
                let mut fresh_needed = 0usize;
                for (g, (line, any_store)) in s.groups.iter().enumerate() {
                    let (state, way) = l1c.array.lookup(*line);
                    s.group_info.push((state, way));
                    let is_hit = state.valid() && (!any_store || state.writable());
                    if is_hit {
                        continue;
                    }
                    match l1c.mshrs.find(*line) {
                        Some(id) => {
                            if !l1c.mshrs.can_merge(id, s.group_count[g] as usize) {
                                self.stats.rejections.incr();
                                break 'body false;
                            }
                        }
                        None => fresh_needed += 1,
                    }
                }
                if fresh_needed
                    > (l1c.mshrs.capacity() - l1c.mshrs.in_use()).saturating_sub(withheld)
                {
                    self.stats.rejections.incr();
                    break 'body false;
                }
            }

            // Bank queueing: unique words per bank serialize. The delay of
            // a word is its rank among distinct same-bank words; repeated
            // words reuse the delay memoized at first appearance.
            let banks = self.cfg.l1d.banks as u64;
            let penalty = self.cfg.bank_conflict_penalty;
            s.bank_count.clear();
            s.bank_count.resize(self.cfg.l1d.banks, 0);
            for a in accesses {
                let word = a.addr / 8;
                let delay = match s.word_delay.iter().find(|&&(w, _)| w == word) {
                    Some(&(_, d)) => d,
                    None => {
                        let bank = (word % banks) as usize;
                        let d = s.bank_count[bank] * penalty;
                        s.bank_count[bank] += 1;
                        s.word_delay.push((word, d));
                        d
                    }
                };
                s.lane_delay.push(delay);
                self.stats.bank_conflict_cycles.add(delay);
            }

            self.stats.l1d_lane_accesses.add(accesses.len() as u64);
            // Placeholder entries; every slot is overwritten below because
            // each access belongs to exactly one line group.
            out.extend(accesses.iter().map(|a| LaneOutcome {
                lane: a.lane,
                outcome: AccessOutcome::Hit {
                    ready_at: Cycle::ZERO,
                },
            }));

            for (g, &(line, any_store)) in s.groups.iter().enumerate() {
                self.stats.l1d_line_accesses.incr();
                let state = self.l1s[l1].array.touch(line, s.group_info[g].1);
                let is_hit = state.valid() && (!any_store || state.writable());
                let lanes =
                    &s.group_lanes[s.group_start[g] as usize..s.group_start[g + 1] as usize];
                if is_hit {
                    self.stats.l1d_hits.incr();
                    // Store to E silently upgrades to M.
                    if any_store && state == MesiState::Exclusive {
                        self.l1s[l1].array.set_state(line, MesiState::Modified);
                    }
                    for &i in lanes {
                        let i = i as usize;
                        let ready = now + self.cfg.l1d.hit_latency + s.lane_delay[i];
                        out[i] = LaneOutcome {
                            lane: accesses[i].lane,
                            outcome: AccessOutcome::Hit {
                                ready_at: Cycle(ready.raw()),
                            },
                        };
                    }
                    continue;
                }

                // Miss path.
                let mshr_id = match self.l1s[l1].mshrs.find(line) {
                    Some(id) => {
                        self.stats.l1d_mshr_merges.incr();
                        if any_store && !self.l1s[l1].mshrs.get(id).exclusive {
                            // Late upgrade: claim exclusivity now; invalidate
                            // other sharers through the directory (no extra
                            // latency charged — the window is a few cycles).
                            self.l1s[l1].mshrs.set_exclusive(id);
                            self.invalidate_other_sharers(line, l1);
                        }
                        id
                    }
                    None => {
                        self.stats.l1d_misses.incr();
                        let upgrade = state == MesiState::Shared && any_store;
                        if upgrade {
                            self.stats.upgrades.incr();
                        }
                        let mut fill_at =
                            self.process_l2_request(now, l1, line, any_store, upgrade);
                        if let Some(f) = &mut self.fault {
                            fill_at += f.fill_jitter();
                        }
                        let id = self.l1s[l1].mshrs.allocate(line, any_store, fill_at);
                        if upgrade {
                            self.l1s[l1].mshrs.set_upgrade(id);
                        }
                        self.events.push(fill_at, (l1, id));
                        self.l1s[l1].fills.push(fill_at, ());
                        self.stats.mlp.record(self.events.len() as f64);
                        id
                    }
                };
                for &i in lanes {
                    let i = i as usize;
                    let req = self.fresh_request();
                    self.l1s[l1].mshrs.add_target(mshr_id, req);
                    out[i] = LaneOutcome {
                        lane: accesses[i].lane,
                        outcome: AccessOutcome::Miss { request: req },
                    };
                }
            }
            // Accepted accesses mutate this L1 (MSHR allocations/merges,
            // MESI upgrades, recency), so retry memos against it expire.
            self.l1s[l1].gen += 1;
            true
        };

        self.scratch = s;
        if !accepted {
            out.clear();
        }
        accepted
    }

    /// Handles an L1 miss at the L2/directory, returning the cycle at which
    /// the fill arrives back at the L1.
    fn process_l2_request(
        &mut self,
        now: Cycle,
        l1: usize,
        line: u64,
        exclusive: bool,
        upgrade: bool,
    ) -> Cycle {
        let line_bytes = self.cfg.l1d.line_bytes;
        // Request departs after the L1 tag lookup discovered the miss.
        let mut depart = now + self.cfg.l1d.hit_latency;
        // Fault injection: hold the request off the crossbar, shifting the
        // epoch bucket that carries it relative to nominal traffic order.
        if let Some(f) = &mut self.fault {
            depart += f.link_delay();
        }
        let arrive = self.xbar.transfer(depart, CTRL_MSG_BYTES);
        self.stats.crossbar_bytes.add(CTRL_MSG_BYTES);
        self.stats.l2_accesses.incr();

        let tag_done = arrive + self.l2.cfg.hit_latency;
        let l2_state = self.l2.array.probe(line);
        let mut data_ready = tag_done;

        if l2_state.valid() {
            self.stats.l2_hits.incr();
            // Respect an in-flight DRAM fill for this line.
            if let Some(&fill) = self.l2.inflight.get(&line) {
                if fill > data_ready {
                    data_ready = fill;
                }
            }
            // Directory actions.
            let entry = self.l2.dir.entry(line).or_default();
            let owner = entry.owner;
            if let Some(o) = owner {
                if o != l1 {
                    // Dirty/exclusive data may live at the owner: flush it
                    // through the L2 (probe + line transfer).
                    self.stats.owner_flushes.incr();
                    let flushed = self.xbar.transfer(data_ready, line_bytes);
                    self.stats.crossbar_bytes.add(line_bytes);
                    data_ready = flushed;
                    let prev = self.l1s[o].array.peek(line);
                    if prev == MesiState::Modified {
                        self.l2.array.set_state(line, MesiState::Modified);
                        self.stats.l1_writebacks.incr();
                    }
                    if exclusive {
                        self.l1s[o].array.invalidate(line);
                        self.l1s[o].gen += 1;
                        self.stats.invalidations.incr();
                    } else if prev.valid() {
                        self.l1s[o].array.set_state(line, MesiState::Shared);
                        self.l1s[o].gen += 1;
                    }
                }
            }
            // Re-borrow after the L1 mutation above.
            let entry = self.l2.dir.entry(line).or_default();
            if let Some(o) = owner {
                if o != l1 {
                    if exclusive {
                        entry.sharers &= !(1 << o);
                    }
                    entry.owner = None;
                }
            }
            if exclusive {
                let sharers = entry.sharers & !(1 << l1);
                entry.sharers = 1 << l1;
                entry.owner = Some(l1);
                if sharers != 0 {
                    // Invalidate remaining sharers (control messages).
                    for o in 0..self.l1s.len() {
                        if sharers & (1 << o) != 0 {
                            self.l1s[o].array.invalidate(line);
                            self.l1s[o].gen += 1;
                            self.stats.invalidations.incr();
                        }
                    }
                    let inv_done = self.xbar.transfer(tag_done, CTRL_MSG_BYTES);
                    self.stats.crossbar_bytes.add(CTRL_MSG_BYTES);
                    data_ready = data_ready.max(inv_done);
                }
            } else {
                let e = self.l2.dir.entry(line).or_default();
                e.sharers |= 1 << l1;
                if e.owner == Some(l1) {
                    e.owner = None;
                }
            }
        } else {
            // L2 miss: fetch from DRAM through an analytic L2 MSHR.
            self.stats.l2_misses.incr();
            let slot = self
                .l2
                .mshr_free_at
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("L2 has MSHRs");
            let start = tag_done.max(self.l2.mshr_free_at[slot]);
            let fill = self.dram.access(start, line_bytes);
            self.stats.dram_accesses.incr();
            self.l2.mshr_free_at[slot] = fill;
            // Install in the L2 immediately (timing carried by `inflight`).
            if let Some(victim) = self.l2.array.fill(line, MesiState::Shared) {
                self.evict_l2_line(start, victim.line_addr, victim.state);
            }
            self.l2.inflight.insert(line, fill);
            let e = self.l2.dir.entry(line).or_default();
            e.sharers = 1 << l1;
            e.owner = Some(l1); // sole copy: E (or M on a store)
            data_ready = fill;
        }
        // Prune stale in-flight records.
        if self.l2.inflight.len() > 4096 {
            self.l2.inflight.retain(|_, &mut c| c > now);
        }

        // Fault injection: the response leg draws its own link delay.
        if let Some(f) = &mut self.fault {
            data_ready += f.link_delay();
        }
        // For upgrades only an acknowledgement returns; otherwise the line.
        let payload = if upgrade { CTRL_MSG_BYTES } else { line_bytes };
        self.stats.crossbar_bytes.add(payload);
        self.xbar.transfer(data_ready, payload)
    }

    /// Invalidates every L1 copy of `line` other than `keeper` and claims
    /// exclusive ownership for it (used when a store merges into an
    /// already-outstanding shared request).
    fn invalidate_other_sharers(&mut self, line: u64, keeper: usize) {
        if let Some(e) = self.l2.dir.get_mut(&line) {
            let others = e.sharers & !(1 << keeper);
            e.sharers = 1 << keeper;
            e.owner = Some(keeper);
            if others != 0 {
                for o in 0..self.l1s.len() {
                    if others & (1 << o) != 0 {
                        let prev = self.l1s[o].array.invalidate(line);
                        self.l1s[o].gen += 1;
                        self.stats.invalidations.incr();
                        if prev == MesiState::Modified {
                            self.stats.l1_writebacks.incr();
                            if self.l2.array.peek(line).valid() {
                                self.l2.array.set_state(line, MesiState::Modified);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Inclusive-L2 eviction: back-invalidate every L1 copy; write dirty
    /// data to DRAM.
    fn evict_l2_line(&mut self, now: Cycle, line: u64, l2_state: MesiState) {
        let entry = self.l2.dir.remove(&line).unwrap_or_default();
        let mut dirty = l2_state == MesiState::Modified;
        for o in 0..self.l1s.len() {
            if entry.sharers & (1 << o) != 0 {
                let prev = self.l1s[o].array.invalidate(line);
                self.l1s[o].gen += 1;
                self.stats.invalidations.incr();
                if prev == MesiState::Modified {
                    dirty = true;
                    self.stats.l1_writebacks.incr();
                }
            }
        }
        self.l2.inflight.remove(&line);
        if dirty {
            self.stats.l2_writebacks.incr();
            // Occupy the DRAM bus; nobody waits on the writeback itself.
            let _ = self.dram.access(now, self.cfg.l2.line_bytes);
        }
    }

    /// Drains all fills that completed at or before `now`, applying them to
    /// the L1 arrays and returning the coalesced request completions.
    pub fn drain_completions(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_completions_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`drain_completions`](Self::drain_completions):
    /// completions are appended to the caller-owned `out` (cleared first), so
    /// the run loop can reuse one buffer across cycles.
    pub fn drain_completions_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.clear();
        while let Some((at, (l1, mshr_id))) = self.events.pop_ready(now) {
            // Keep the per-L1 mirror in lockstep with the global list. The
            // global (time, insertion) pop order restricted to one L1 is
            // that L1's own (time, insertion) order, so the mirror's
            // minimum is always the entry being drained.
            let mirrored = self.l1s[l1].fills.pop();
            if self.strict_checks {
                assert_eq!(mirrored.map(|(t, ())| t), Some(at), "fill mirror drift");
            }
            let mut entry = self.l1s[l1].mshrs.release(mshr_id);
            self.l1s[l1].gen += 1;
            let line = entry.line_addr;
            // Decide the install state from the directory at fill time.
            let state = if entry.exclusive {
                MesiState::Modified
            } else {
                let sharers = self.l2.dir.get(&line).map(|e| e.sharers).unwrap_or(0);
                if sharers & !(1 << l1) == 0 {
                    MesiState::Exclusive
                } else {
                    MesiState::Shared
                }
            };
            if entry.exclusive {
                if let Some(e) = self.l2.dir.get_mut(&line) {
                    e.owner = Some(l1);
                    e.sharers |= 1 << l1;
                }
            }
            let present = self.l1s[l1].array.peek(line).valid();
            if present {
                // Upgrade (or a racing refill): state change in place.
                self.l1s[l1].array.set_state(line, state);
            } else if let Some(victim) = self.l1s[l1].array.fill(line, state) {
                self.handle_l1_eviction(at, l1, victim.line_addr, victim.state);
            }
            for req in entry.targets.drain(..) {
                out.push(Completion {
                    l1,
                    request: req,
                    at,
                });
            }
            self.l1s[l1].mshrs.recycle_targets(entry.targets);
        }
    }

    fn handle_l1_eviction(&mut self, now: Cycle, l1: usize, line: u64, state: MesiState) {
        if state == MesiState::Modified {
            self.stats.l1_writebacks.incr();
            self.stats.crossbar_bytes.add(self.cfg.l1d.line_bytes);
            let _ = self.xbar.transfer(now, self.cfg.l1d.line_bytes);
            if self.l2.array.peek(line).valid() {
                self.l2.array.set_state(line, MesiState::Modified);
            }
        }
        if let Some(e) = self.l2.dir.get_mut(&line) {
            e.sharers &= !(1 << l1);
            if e.owner == Some(l1) {
                e.owner = None;
            }
        }
    }

    /// Earliest pending fill, if any (lets the run loop skip idle cycles).
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.events.next_ready_at()
    }

    /// Earliest pending fill destined for L1 `l1`, if any — the per-WPU
    /// wakeup signal for the event-driven run loop.
    pub fn next_completion_at_l1(&self, l1: usize) -> Option<Cycle> {
        self.l1s[l1].fills.next_at()
    }

    /// Mutation generation of L1 `l1`. Strictly increases on every change
    /// to that L1's array or MSHR file. A warp access re-attempted with the
    /// same lanes against the same generation must reach the same
    /// accept/reject decision, which lets a structurally-stalled group
    /// cache its rejection instead of re-probing every cycle.
    pub fn l1_generation(&self, l1: usize) -> u64 {
        self.l1s[l1].gen
    }

    /// Records a rejection replayed from a caller's memo without re-running
    /// [`warp_access_into`](Self::warp_access_into), keeping the rejection
    /// counter identical to the un-memoized execution.
    pub fn count_repeat_rejection(&mut self) {
        self.stats.rejections.incr();
    }

    /// Number of in-flight fills.
    pub fn pending_fills(&self) -> usize {
        self.events.len()
    }

    /// Outstanding MSHR entries at L1 `l1` (diagnostics).
    pub fn mshr_in_use(&self, l1: usize) -> usize {
        self.l1s[l1].mshrs.in_use()
    }

    /// MSHR entry capacity of L1 `l1` (diagnostics).
    pub fn mshr_capacity(&self, l1: usize) -> usize {
        self.l1s[l1].mshrs.capacity()
    }

    /// Latency model for an L1-I cold-miss fill. The I-cache arrays
    /// themselves live inside the WPUs (so the parallel compute phase can
    /// probe them without touching shared state); only this shared-timing
    /// part — the request crossing the crossbar, the L2 lookup
    /// (instructions always hit there in these tiny kernels), and the line
    /// crossing back — runs against the memory system, at commit time.
    /// Returns the cycle the instruction is available.
    pub fn icache_fill_latency(&mut self, now: Cycle) -> Cycle {
        let arrive = self
            .xbar
            .transfer(now + self.cfg.l1i.hit_latency, CTRL_MSG_BYTES);
        let back = self
            .xbar
            .transfer(arrive + self.l2.cfg.hit_latency, self.cfg.l1i.line_bytes);
        self.stats
            .crossbar_bytes
            .add(CTRL_MSG_BYTES + self.cfg.l1i.line_bytes);
        back
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Cycles transfers spent queued on the crossbar (contention measure).
    pub fn crossbar_queue_cycles(&self) -> u64 {
        self.xbar.queue_cycles.get()
    }

    /// Cycles requests spent queued on the DRAM bus.
    pub fn dram_queue_cycles(&self) -> u64 {
        self.dram.queue_cycles()
    }

    /// Hit/miss statistics of one L1 D-cache array.
    pub fn l1_array_stats(&self, l1: usize) -> crate::cache::CacheStats {
        self.l1s[l1].array.stats
    }

    /// Peek an L1 line state (test helper).
    pub fn l1_line_state(&self, l1: usize, addr: u64) -> MesiState {
        let line = self.line_of(addr);
        self.l1s[l1].array.peek(line)
    }

    /// Peek the L2 state for a byte address (test helper).
    pub fn l2_line_state(&self, addr: u64) -> MesiState {
        self.l2.array.peek(self.line_of(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::paper(4, 16))
    }

    fn load(lane: usize, addr: u64) -> LaneAccess {
        LaneAccess {
            lane,
            addr,
            kind: AccessKind::Load,
        }
    }

    fn store(lane: usize, addr: u64) -> LaneAccess {
        LaneAccess {
            lane,
            addr,
            kind: AccessKind::Store,
        }
    }

    fn complete_all(m: &mut MemorySystem) -> Vec<Completion> {
        let at = m.next_completion_at().expect("pending fill");
        m.drain_completions(at)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys();
        let out = m.warp_access(Cycle(0), 0, &[load(0, 0x100)]).unwrap();
        assert!(matches!(out[0].outcome, AccessOutcome::Miss { .. }));
        let done = complete_all(&mut m);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].l1, 0);
        // Cold L2 miss: crossbar + L2 + DRAM round trip, well over 100 cyc.
        assert!(done[0].at.raw() > 100, "fill at {:?}", done[0].at);

        let out = m.warp_access(done[0].at, 0, &[load(0, 0x100)]).unwrap();
        match out[0].outcome {
            AccessOutcome::Hit { ready_at } => {
                assert_eq!(ready_at, done[0].at + 3, "3-cycle L1 hit");
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn same_line_lanes_coalesce() {
        let mut m = sys();
        // Four lanes touch the same 128B line: one L1 miss, one DRAM access.
        let accesses: Vec<_> = (0..4).map(|l| load(l, 0x200 + 8 * l as u64)).collect();
        let out = m.warp_access(Cycle(0), 0, &accesses).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out
            .iter()
            .all(|o| matches!(o.outcome, AccessOutcome::Miss { .. })));
        assert_eq!(m.stats().l1d_misses.get(), 1);
        assert_eq!(m.stats().dram_accesses.get(), 1);
        let done = complete_all(&mut m);
        assert_eq!(done.len(), 4, "all lanes complete with the fill");
        // All complete at the same cycle.
        assert!(done.windows(2).all(|w| w[0].at == w[1].at));
    }

    #[test]
    fn divergent_lines_make_multiple_misses() {
        let mut m = sys();
        // Two lanes touch different lines: two MSHRs, two DRAM accesses.
        let out = m
            .warp_access(Cycle(0), 0, &[load(0, 0x0), load(1, 0x1000)])
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(m.stats().l1d_misses.get(), 2);
        assert_eq!(m.stats().dram_accesses.get(), 2);
    }

    #[test]
    fn mixed_hit_miss_is_memory_divergence() {
        let mut m = sys();
        m.warp_access(Cycle(0), 0, &[load(0, 0x0)]).unwrap();
        let t = complete_all(&mut m)[0].at;
        // Lane 0 hits the cached line; lane 1 misses a new line.
        let out = m
            .warp_access(t, 0, &[load(0, 0x8), load(1, 0x2000)])
            .unwrap();
        assert!(matches!(out[0].outcome, AccessOutcome::Hit { .. }));
        assert!(matches!(out[1].outcome, AccessOutcome::Miss { .. }));
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let mut m = sys();
        let a = m.warp_access(Cycle(0), 0, &[load(0, 0x300)]).unwrap();
        let b = m.warp_access(Cycle(1), 0, &[load(1, 0x308)]).unwrap();
        assert!(matches!(a[0].outcome, AccessOutcome::Miss { .. }));
        assert!(matches!(b[0].outcome, AccessOutcome::Miss { .. }));
        assert_eq!(m.stats().l1d_misses.get(), 1, "one primary miss");
        assert_eq!(m.stats().l1d_mshr_merges.get(), 1);
        assert_eq!(m.stats().dram_accesses.get(), 1);
        let done = complete_all(&mut m);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn store_needs_ownership() {
        let mut m = sys();
        // L1#0 loads a line (becomes Exclusive — sole copy).
        m.warp_access(Cycle(0), 0, &[load(0, 0x400)]).unwrap();
        let t = complete_all(&mut m)[0].at;
        assert_eq!(m.l1_line_state(0, 0x400), MesiState::Exclusive);
        // Store hits and silently upgrades E -> M.
        let out = m.warp_access(t, 0, &[store(0, 0x400)]).unwrap();
        assert!(matches!(out[0].outcome, AccessOutcome::Hit { .. }));
        assert_eq!(m.l1_line_state(0, 0x400), MesiState::Modified);
    }

    #[test]
    fn read_sharing_then_upgrade_invalidates() {
        let mut m = sys();
        // Both L1s read the same line.
        m.warp_access(Cycle(0), 0, &[load(0, 0x500)]).unwrap();
        let t0 = complete_all(&mut m)[0].at;
        m.warp_access(t0, 1, &[load(0, 0x500)]).unwrap();
        let t1 = complete_all(&mut m)[0].at;
        assert_eq!(m.l1_line_state(1, 0x500), MesiState::Shared);
        // L1#0 may be E or S depending on the second read's downgrade.
        // Now L1#0 stores: its Shared copy upgrades; L1#1 invalidated.
        let out = m.warp_access(t1, 0, &[store(0, 0x500)]).unwrap();
        assert!(matches!(out[0].outcome, AccessOutcome::Miss { .. }));
        assert_eq!(m.stats().upgrades.get(), 1);
        let t2 = complete_all(&mut m)[0].at;
        assert_eq!(m.l1_line_state(0, 0x500), MesiState::Modified);
        assert_eq!(m.l1_line_state(1, 0x500), MesiState::Invalid);
        assert!(m.stats().invalidations.get() >= 1);
        let _ = t2;
    }

    #[test]
    fn dirty_remote_copy_is_flushed_on_read() {
        let mut m = sys();
        // L1#0 writes a line (M).
        m.warp_access(Cycle(0), 0, &[store(0, 0x600)]).unwrap();
        let t = complete_all(&mut m)[0].at;
        assert_eq!(m.l1_line_state(0, 0x600), MesiState::Modified);
        // L1#1 reads: owner flush, both end Shared.
        m.warp_access(t, 1, &[load(0, 0x600)]).unwrap();
        let _ = complete_all(&mut m);
        assert_eq!(m.l1_line_state(0, 0x600), MesiState::Shared);
        assert_eq!(m.l1_line_state(1, 0x600), MesiState::Shared);
        assert_eq!(m.stats().owner_flushes.get(), 1);
        assert_eq!(m.stats().l1_writebacks.get(), 1);
        assert_eq!(m.l2_line_state(0x600), MesiState::Modified);
    }

    #[test]
    fn l2_hit_is_faster_than_dram() {
        let mut m = sys();
        // Warm the L2 via L1#0, then evict nothing and read from L1#1.
        m.warp_access(Cycle(0), 0, &[load(0, 0x700)]).unwrap();
        let t = complete_all(&mut m)[0].at;
        let before = m.stats().dram_accesses.get();
        m.warp_access(t, 1, &[load(0, 0x700)]).unwrap();
        let done = complete_all(&mut m)[0].at;
        assert_eq!(m.stats().dram_accesses.get(), before, "served by L2");
        // The flush path makes this slower than a pure L2 hit would be, but
        // far faster than a DRAM trip.
        assert!(done - t < 100, "L2 hit took {} cycles", done - t);
    }

    #[test]
    fn bank_conflicts_add_queue_delay() {
        let mut m = sys();
        // Warm a line.
        m.warp_access(Cycle(0), 0, &[load(0, 0x0)]).unwrap();
        let t = complete_all(&mut m)[0].at;
        // 16 banks, word-interleaved: words 0 and 16 share bank 0.
        let out = m
            .warp_access(t, 0, &[load(0, 0x0), load(1, 16 * 8)])
            .unwrap();
        // Second access queues behind the first in bank 0 (if both hit).
        let AccessOutcome::Hit { ready_at: r0 } = out[0].outcome else {
            panic!("lane 0 should hit")
        };
        match out[1].outcome {
            AccessOutcome::Hit { ready_at } => {
                assert_eq!(ready_at, r0 + 1, "one cycle of bank queueing");
            }
            // Word 16*8 = 0x80 is a different line; it may miss. Ensure the
            // conflict stat still advanced.
            AccessOutcome::Miss { .. } => {}
        }
        assert!(m.stats().bank_conflict_cycles.get() >= 1);
    }

    #[test]
    fn mshr_exhaustion_rejects_without_side_effects() {
        let mut cfg = MemConfig::paper(1, 16);
        cfg.l1d.mshrs = 2;
        let mut m = MemorySystem::new(cfg);
        // Two outstanding misses fill the MSHRs.
        m.warp_access(Cycle(0), 0, &[load(0, 0x0)]).unwrap();
        m.warp_access(Cycle(0), 0, &[load(0, 0x1000)]).unwrap();
        let misses_before = m.stats().l1d_misses.get();
        // A third distinct line cannot get an MSHR.
        let out = m.warp_access(Cycle(1), 0, &[load(0, 0x2000)]);
        assert!(out.is_none());
        assert_eq!(m.stats().rejections.get(), 1);
        assert_eq!(m.stats().l1d_misses.get(), misses_before, "no side effects");
        // After fills drain, the access succeeds.
        let t = {
            let mut last = Cycle(0);
            while m.pending_fills() > 0 {
                let at = m.next_completion_at().unwrap();
                m.drain_completions(at);
                last = at;
            }
            last
        };
        assert!(m.warp_access(t, 0, &[load(0, 0x2000)]).is_some());
    }

    #[test]
    fn icache_fill_crosses_to_l2_and_back() {
        let mut m = sys();
        let r0 = m.icache_fill_latency(Cycle(0));
        assert!(r0.raw() > 1, "cold miss goes to L2");
        // Crossbar + L2 lookup + crossbar, from the I-hit issue point.
        let cfg = *m.config();
        assert!(r0.raw() >= cfg.l1i.hit_latency + 2 * cfg.crossbar_latency + cfg.l2.hit_latency);
        assert_eq!(
            m.stats().crossbar_bytes.get(),
            CTRL_MSG_BYTES + cfg.l1i.line_bytes,
            "request and line each cross once"
        );
        // Replays are deterministic and never earlier than the request.
        let r1 = m.icache_fill_latency(r0);
        assert!(r1 > r0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = sys();
            let mut trace = Vec::new();
            for i in 0..50u64 {
                let addr = (i * 1040) % 65536;
                if let Some(out) = m.warp_access(Cycle(i * 7), (i % 4) as usize, &[load(0, addr)]) {
                    for o in out {
                        trace.push(format!("{o:?}"));
                    }
                }
                for c in m.drain_completions(Cycle(i * 7)) {
                    trace.push(format!("{c:?}"));
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
