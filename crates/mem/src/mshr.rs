//! Miss-status holding registers with intra-warp request coalescing.
//!
//! The paper (Section 3.3): "Memory coalescing is performed at the L1. All
//! requests from a warp to the same cache line are coalesced in the MSHR.
//! ... Each MSHR hosts a cache line and can track as many requests to that
//! line as the SIMD width requires."

use crate::hierarchy::RequestId;
use dws_engine::{Cycle, FastHashMap};

/// Index of an MSHR entry within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(pub usize);

/// One in-flight miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Line address being fetched.
    pub line_addr: u64,
    /// Whether the line must arrive in an exclusive (writable) state.
    pub exclusive: bool,
    /// Whether this is an ownership upgrade of an already-present Shared
    /// line (no data fetch; the fill is a state change).
    pub upgrade: bool,
    /// Requests to complete when the fill arrives.
    pub targets: Vec<RequestId>,
    /// Scheduled fill time.
    pub fill_at: Cycle,
}

/// A file of MSHR entries for one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Option<MshrEntry>>,
    /// Line address -> occupied slot, so [`MshrFile::find`] (which runs on
    /// every L1 access group, including inside the allocation assert) does
    /// not scan the file.
    line_map: FastHashMap<u64, usize>,
    /// Retired target vectors, recycled into new entries so the steady
    /// state allocates no per-miss buffers.
    spare_targets: Vec<Vec<RequestId>>,
    /// Occupancy bitmask per 64 slots: a free slot is found by bit scan
    /// instead of walking the entry array.
    occupied: Vec<u64>,
    max_targets: usize,
    in_use: usize,
}

impl MshrFile {
    /// Creates a file of `entries` MSHRs, each holding up to `max_targets`
    /// coalesced requests.
    pub fn new(entries: usize, max_targets: usize) -> Self {
        assert!(entries > 0 && max_targets > 0);
        MshrFile {
            entries: vec![None; entries],
            line_map: FastHashMap::default(),
            spare_targets: Vec::new(),
            occupied: vec![0; entries.div_ceil(64)],
            max_targets,
            in_use: 0,
        }
    }

    /// Finds the entry tracking `line_addr`, if any.
    pub fn find(&self, line_addr: u64) -> Option<MshrId> {
        self.line_map.get(&line_addr).map(|&slot| MshrId(slot))
    }

    /// Whether a new entry can be allocated.
    pub fn has_free(&self) -> bool {
        self.in_use < self.entries.len()
    }

    /// Whether `count` more targets can merge into entry `id`.
    pub fn can_merge(&self, id: MshrId, count: usize) -> bool {
        self.get(id).targets.len() + count <= self.max_targets
    }

    /// Allocates an entry for `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full (callers must check [`MshrFile::has_free`])
    /// or if the line already has an entry.
    pub fn allocate(&mut self, line_addr: u64, exclusive: bool, fill_at: Cycle) -> MshrId {
        assert!(
            self.find(line_addr).is_none(),
            "line {line_addr:#x} already has an MSHR"
        );
        // Lowest free index, matching MshrId assignment from the original
        // full scan of the entry array.
        let slot = self
            .occupied
            .iter()
            .enumerate()
            .find_map(|(w, &bits)| {
                let free = !bits & Self::word_mask(self.entries.len(), w);
                (free != 0).then(|| w * 64 + free.trailing_zeros() as usize)
            })
            .expect("MSHR file full; check has_free() first");
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.line_map.insert(line_addr, slot);
        self.entries[slot] = Some(MshrEntry {
            line_addr,
            exclusive,
            upgrade: false,
            targets: self.spare_targets.pop().unwrap_or_default(),
            fill_at,
        });
        self.in_use += 1;
        MshrId(slot)
    }

    /// Adds a request to an entry's target list.
    ///
    /// # Panics
    ///
    /// Panics if the target list is full (check [`MshrFile::can_merge`]).
    pub fn add_target(&mut self, id: MshrId, req: RequestId) {
        let max = self.max_targets;
        let e = self.get_mut(id);
        assert!(e.targets.len() < max, "MSHR target list overflow");
        e.targets.push(req);
    }

    /// Marks an entry as needing exclusive ownership (a store merged in).
    pub fn set_exclusive(&mut self, id: MshrId) {
        self.get_mut(id).exclusive = true;
    }

    /// Marks an entry as an in-place ownership upgrade.
    pub fn set_upgrade(&mut self, id: MshrId) {
        self.get_mut(id).upgrade = true;
    }

    /// Releases an entry, returning its coalesced targets.
    pub fn release(&mut self, id: MshrId) -> MshrEntry {
        let e = self.entries[id.0].take().expect("release of free MSHR");
        self.occupied[id.0 / 64] &= !(1 << (id.0 % 64));
        self.line_map.remove(&e.line_addr);
        self.in_use -= 1;
        e
    }

    /// Valid-slot bits of occupancy word `w` for a file of `len` entries.
    #[inline]
    fn word_mask(len: usize, w: usize) -> u64 {
        let remaining = len - (w * 64).min(len);
        if remaining >= 64 {
            !0
        } else {
            (1u64 << remaining) - 1
        }
    }

    /// Returns a released entry's (drained) target buffer to the recycle
    /// pool, so the next [`allocate`](Self::allocate) reuses its capacity.
    pub fn recycle_targets(&mut self, mut targets: Vec<RequestId>) {
        targets.clear();
        self.spare_targets.push(targets);
    }

    /// Borrows an entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is free.
    pub fn get(&self, id: MshrId) -> &MshrEntry {
        self.entries[id.0].as_ref().expect("access to free MSHR")
    }

    fn get_mut(&mut self, id: MshrId) -> &mut MshrEntry {
        self.entries[id.0].as_mut().expect("access to free MSHR")
    }

    /// Number of entries currently in flight.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_find_release() {
        let mut f = MshrFile::new(2, 4);
        assert!(f.has_free());
        let a = f.allocate(10, false, Cycle(50));
        assert_eq!(f.find(10), Some(a));
        assert_eq!(f.find(11), None);
        f.add_target(a, RequestId(1));
        f.add_target(a, RequestId(2));
        let e = f.release(a);
        assert_eq!(e.targets, vec![RequestId(1), RequestId(2)]);
        assert_eq!(e.fill_at, Cycle(50));
        assert_eq!(f.in_use(), 0);
        assert_eq!(f.find(10), None);
    }

    #[test]
    fn capacity_limits() {
        let mut f = MshrFile::new(2, 2);
        let a = f.allocate(1, false, Cycle(1));
        let _b = f.allocate(2, false, Cycle(1));
        assert!(!f.has_free());
        f.add_target(a, RequestId(1));
        assert!(f.can_merge(a, 1));
        f.add_target(a, RequestId(2));
        assert!(!f.can_merge(a, 1));
        assert_eq!(f.capacity(), 2);
    }

    #[test]
    fn exclusive_upgrade() {
        let mut f = MshrFile::new(1, 4);
        let a = f.allocate(5, false, Cycle(9));
        assert!(!f.get(a).exclusive);
        f.set_exclusive(a);
        assert!(f.get(a).exclusive);
    }

    #[test]
    #[should_panic(expected = "already has an MSHR")]
    fn duplicate_line_panics() {
        let mut f = MshrFile::new(2, 2);
        f.allocate(1, false, Cycle(1));
        f.allocate(1, false, Cycle(1));
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn over_allocate_panics() {
        let mut f = MshrFile::new(1, 2);
        f.allocate(1, false, Cycle(1));
        f.allocate(2, false, Cycle(1));
    }
}
