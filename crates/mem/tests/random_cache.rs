//! Randomized tests of the cache array against a naive reference model, and
//! whole-hierarchy invariants under random access streams. Driven by the
//! vendored deterministic PRNG over many seeds.

use dws_engine::rng::Rng64;
use dws_engine::Cycle;
use dws_mem::{
    AccessKind, AccessOutcome, CacheArray, CacheConfig, LaneAccess, MemConfig, MemorySystem,
    MesiState,
};
use std::collections::HashMap;

/// A naive set-associative LRU model: per set, a vector ordered by recency.
struct RefCache {
    sets: Vec<Vec<u64>>, // most recent last
    assoc: usize,
    set_mask: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.num_sets()],
            assoc: cfg.assoc,
            set_mask: cfg.num_sets() as u64 - 1,
        }
    }

    /// Returns whether the line hit; updates recency / fills on miss.
    fn access(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&l| l == line) {
            s.remove(pos);
            s.push(line);
            true
        } else {
            if s.len() == self.assoc {
                s.remove(0); // evict LRU
            }
            s.push(line);
            false
        }
    }
}

fn small_cfg() -> CacheConfig {
    CacheConfig {
        size_bytes: 8 * 128, // 4 sets x 2 ways
        assoc: 2,
        line_bytes: 128,
        hit_latency: 1,
        mshrs: 8,
        mshr_targets: 8,
        banks: 1,
    }
}

#[test]
fn cache_array_matches_reference_lru() {
    for seed in 0..48u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(399);
        let cfg = small_cfg();
        let mut dut = CacheArray::new(&cfg);
        let mut reference = RefCache::new(&cfg);
        for _ in 0..n {
            let line = rng.range_i64(0, 64) as u64;
            let expect_hit = reference.access(line);
            let got = dut.probe(line);
            assert_eq!(got.valid(), expect_hit, "seed {seed} line {line}");
            if !got.valid() {
                dut.fill(line, MesiState::Shared);
            }
        }
    }
}

#[test]
fn resident_lines_never_exceed_capacity() {
    for seed in 0..48u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(399);
        let cfg = small_cfg();
        let mut dut = CacheArray::new(&cfg);
        for _ in 0..n {
            let line = rng.range_i64(0, 4096) as u64;
            if !dut.probe(line).valid() {
                dut.fill(line, MesiState::Exclusive);
            }
            assert!(dut.resident_lines() <= 8, "seed {seed}");
        }
    }
}

/// Every miss eventually completes, exactly once per issued request.
#[test]
fn hierarchy_completes_every_request() {
    for seed in 0..32u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(119);
        let mut m = MemorySystem::new(MemConfig::paper(4, 16));
        let mut outstanding: HashMap<u64, usize> = HashMap::new(); // request -> count
        let mut now = Cycle(0);
        let mut issued = 0u64;
        let mut completed = 0u64;
        for _ in 0..n {
            let word = rng.range_i64(0, 2048) as u64;
            let store = rng.chance(0.5);
            let l1 = rng.range_usize(4);
            now += 3;
            let access = LaneAccess {
                lane: (word % 16) as usize,
                addr: word * 8,
                kind: if store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            };
            if let Some(out) = m.warp_access(now, l1, &[access]) {
                for o in out {
                    if let AccessOutcome::Miss { request } = o.outcome {
                        *outstanding.entry(request.0).or_insert(0) += 1;
                        issued += 1;
                    }
                }
            }
            for c in m.drain_completions(now) {
                let e = outstanding.get_mut(&c.request.0).expect("known request");
                assert_eq!(*e, 1, "double completion (seed {seed})");
                *e = 0;
                completed += 1;
            }
        }
        // Drain the tail.
        while m.pending_fills() > 0 {
            let at = m
                .next_completion_at()
                .expect("pending implies a next event");
            for c in m.drain_completions(at) {
                let e = outstanding.get_mut(&c.request.0).expect("known request");
                assert_eq!(*e, 1, "double completion (seed {seed})");
                *e = 0;
                completed += 1;
            }
        }
        assert_eq!(issued, completed, "seed {seed}");
        assert!(outstanding.values().all(|&v| v == 0), "seed {seed}");
    }
}

/// Coherence safety: after any access stream, no line is Modified or
/// Exclusive in two different L1s at once.
#[test]
fn single_writer_invariant() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(149);
        let mut m = MemorySystem::new(MemConfig::paper(4, 16));
        let mut now = Cycle(0);
        for _ in 0..n {
            let word = rng.range_i64(0, 32) as u64;
            let store = rng.chance(0.5);
            let l1 = rng.range_usize(4);
            now += 5;
            let addr = word * 128; // one word per line, 32 distinct lines
            let access = LaneAccess {
                lane: 0,
                addr,
                kind: if store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            };
            let _ = m.warp_access(now, l1, &[access]);
            // Settle all fills before checking the invariant.
            while m.pending_fills() > 0 {
                let at = m.next_completion_at().expect("pending");
                m.drain_completions(at);
                if at > now {
                    now = at;
                }
            }
            for line_word in 0u64..32 {
                let a = line_word * 128;
                let owners = (0..4).filter(|&i| m.l1_line_state(i, a).writable()).count();
                assert!(
                    owners <= 1,
                    "line {a:#x} has {owners} writers (seed {seed})"
                );
                // If anyone holds it writable, nobody else holds it at all.
                if owners == 1 {
                    let sharers = (0..4).filter(|&i| m.l1_line_state(i, a).valid()).count();
                    assert_eq!(sharers, 1, "writable line {a:#x} also shared (seed {seed})");
                }
            }
        }
    }
}
