//! # Dynamic Warp Subdivision — reproduction of Meng, Tarjan & Skadron (ISCA 2010)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`engine`] — cycle/event simulation primitives,
//! * [`isa`] — the kernel IR, builder DSL and CFG analysis,
//! * [`mem`] — the two-level coherent cache hierarchy (Table 3),
//! * [`core`] — the WPU with dynamic warp subdivision (the contribution),
//! * [`energy`] — the 65 nm energy model,
//! * [`kernels`] — the eight data-parallel benchmarks (Table 2),
//! * [`sim`] — machine assembly, run loop, metrics and presets.
//!
//! # Quickstart
//!
//! ```
//! use dws::kernels::{Benchmark, Scale};
//! use dws::sim::{Machine, SimConfig};
//! use dws::core::Policy;
//!
//! let spec = Benchmark::Merge.build(Scale::Test, 42);
//! let conv = Machine::run(&SimConfig::paper(Policy::conventional()), &spec).unwrap();
//! let dws = Machine::run(&SimConfig::paper(Policy::dws_revive()), &spec).unwrap();
//! spec.verify(&dws.memory).unwrap();
//! println!("speedup: {:.2}x", dws.speedup_over(&conv));
//! ```

pub use dws_core as core;
pub use dws_energy as energy;
pub use dws_engine as engine;
pub use dws_isa as isa;
pub use dws_kernels as kernels;
pub use dws_mem as mem;
pub use dws_sim as sim;
