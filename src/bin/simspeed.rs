//! Simulator-throughput benchmark: measures host-side simulation speed
//! (Mcycles/s, Minst/s) on representative kernels, times the full
//! Figure 13 sweep serially (one worker) and on the default worker pool to
//! report the harness parallel speedup, then shards one scaled 32-WPU
//! machine across intra-run worker threads (`DWS_THREADS`) to report the
//! deterministic intra-run speedup.
//!
//! Results are printed as a table and written to `BENCH_simspeed.json` in
//! the current directory.
//!
//! ```text
//! cargo run --release --bin simspeed            # DWS_SCALE=test|bench|paper
//! ```

use dws::core::Policy;
use dws::kernels::{Benchmark, KernelSpec, Scale};
use dws::sim::presets::figure13_policies;
use dws::sim::{Machine, SimConfig, SweepRunner};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Throughput {
    bench: &'static str,
    policy: &'static str,
    cycles: u64,
    insts: u64,
    host_seconds: f64,
}

impl Throughput {
    fn mcyc(&self) -> f64 {
        self.cycles as f64 / self.host_seconds / 1e6
    }
    fn minst(&self) -> f64 {
        self.insts as f64 / self.host_seconds / 1e6
    }
}

/// Queues one Figure 13 sweep (every benchmark x Conv + the figure's
/// policy list) over pre-built kernels.
fn fig13_sweep(specs: &[Arc<KernelSpec>]) -> SweepRunner {
    let mut sweep = SweepRunner::new();
    for spec in specs {
        sweep.add("Conv", SimConfig::paper(Policy::conventional()), spec);
        for (name, policy) in figure13_policies() {
            sweep.add(name, SimConfig::paper(policy), spec);
        }
    }
    sweep
}

fn time_sweep(sweep: SweepRunner) -> f64 {
    let t0 = Instant::now();
    // Streaming: each result is verified on the worker that produced it and
    // its memory image dropped immediately, so peak RSS is one machine per
    // worker rather than one image per job.
    let outcomes = sweep.run_streaming();
    let dt = t0.elapsed().as_secs_f64();
    // Every job ran to completion (a panicked job is isolated to its own
    // outcome), so report all failures at once instead of just the first.
    if let Some(summary) = dws::sim::failure_summary(&outcomes) {
        eprintln!("{summary}");
        std::process::exit(1);
    }
    dt
}

fn main() {
    let (scale, scale_name) = match std::env::var("DWS_SCALE").as_deref() {
        Ok("test") => (Scale::Test, "test"),
        Ok("paper") => (Scale::Paper, "paper"),
        _ => (Scale::Bench, "bench"),
    };
    let seed = std::env::var("DWS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // Part 1: raw single-simulation throughput.
    println!("-- simulator throughput ({scale_name} scale) --");
    let mut rows: Vec<Throughput> = Vec::new();
    for bench in [Benchmark::Merge, Benchmark::Fft, Benchmark::Svm] {
        let spec = bench.build(scale, seed);
        for policy in [Policy::conventional(), Policy::dws_revive()] {
            let cfg = SimConfig::paper(policy);
            let t0 = Instant::now();
            let r = Machine::run(&cfg, &spec).unwrap();
            let row = Throughput {
                bench: bench.name(),
                policy: policy.paper_name(),
                cycles: r.cycles,
                insts: r.wpu.warp_insts.get(),
                host_seconds: t0.elapsed().as_secs_f64(),
            };
            println!(
                "{:8} {:16} cycles={:9} host={:6.2}s -> {:.2} Mcyc/s, {:.2} Minst/s",
                row.bench,
                row.policy,
                row.cycles,
                row.host_seconds,
                row.mcyc(),
                row.minst()
            );
            rows.push(row);
        }
    }

    // Part 2: the full Figure 13 sweep, serial vs the worker pool. On a
    // single-core host the pool degenerates to the serial run, so skip it
    // rather than reporting a meaningless 1.0x "speedup".
    let workers = dws::sim::sweep::default_workers();
    let available_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let specs: Vec<Arc<KernelSpec>> = Benchmark::ALL
        .into_iter()
        .map(|b| Arc::new(b.build(scale, seed)))
        .collect();
    let jobs = fig13_sweep(&specs).len();
    println!("\n-- fig13 sweep wall clock ({jobs} jobs) --");
    let serial = time_sweep(fig13_sweep(&specs).with_workers(1));
    println!("serial   (1 worker):  {serial:7.2}s");
    let parallel = if workers > 1 {
        let parallel = time_sweep(fig13_sweep(&specs).with_workers(workers));
        println!(
            "parallel ({workers} workers): {parallel:7.2}s  -> {:.2}x",
            serial / parallel
        );
        Some(parallel)
    } else {
        println!("parallel run skipped (1 worker available)");
        None
    };

    // Part 3: intra-run scaling — one 32-WPU machine (the smallest scaled
    // preset) sharded across worker threads. Unlike the sweep pool this
    // parallelizes a *single* run, bit-identically to serial; the cycle
    // counts are asserted equal, not assumed. Thread count comes from
    // DWS_THREADS when set, else min(cores, 4); on a single-core host the
    // measured "speedup" is honestly below 1 (pure handoff overhead).
    let intra_wpus = dws::sim::presets::scaling_wpu_counts()[0];
    let env_threads = dws::sim::default_threads();
    let intra_threads = if env_threads > 1 {
        env_threads
    } else {
        available_parallelism.clamp(2, 4)
    };
    println!("\n-- intra-run scaling ({intra_wpus}-WPU machine, DWS.ReviveSplit) --");
    let intra_spec = Benchmark::Merge.build(scale, seed);
    let intra_cfg = dws::sim::presets::scaled(Policy::dws_revive(), intra_wpus);
    let t0 = Instant::now();
    let intra_a = Machine::run(&intra_cfg.with_threads(1), &intra_spec).unwrap();
    let intra_serial = t0.elapsed().as_secs_f64();
    println!(
        "serial   (1 thread):  {intra_serial:7.2}s ({} cycles)",
        intra_a.cycles
    );
    let t0 = Instant::now();
    let intra_b = Machine::run(&intra_cfg.with_threads(intra_threads), &intra_spec).unwrap();
    let intra_parallel = t0.elapsed().as_secs_f64();
    assert_eq!(
        intra_a.cycles, intra_b.cycles,
        "parallel run diverged from the serial oracle"
    );
    let intra_speedup = intra_serial / intra_parallel;
    println!(
        "parallel ({intra_threads} threads): {intra_parallel:7.2}s  -> {intra_speedup:.2}x \
         (cycles match: {} == {})",
        intra_a.cycles, intra_b.cycles
    );

    // Hand-rolled JSON: the repo builds offline, with no serialization dep.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"throughput\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"policy\": \"{}\", \"cycles\": {}, \"insts\": {}, \
             \"host_seconds\": {:.4}, \"mcycles_per_sec\": {:.3}, \"minsts_per_sec\": {:.3}}}",
            row.bench,
            row.policy,
            row.cycles,
            row.insts,
            row.host_seconds,
            row.mcyc(),
            row.minst()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"fig13_sweep\": {\n");
    let _ = writeln!(json, "    \"jobs\": {jobs},");
    let _ = writeln!(json, "    \"workers\": {workers},");
    let _ = writeln!(
        json,
        "    \"available_parallelism\": {available_parallelism},"
    );
    let _ = writeln!(json, "    \"serial_seconds\": {serial:.4},");
    match parallel {
        Some(p) => {
            let _ = writeln!(json, "    \"parallel_seconds\": {p:.4},");
            let _ = writeln!(json, "    \"parallel_speedup\": {:.4}", serial / p);
        }
        None => {
            let _ = writeln!(json, "    \"parallel_seconds\": null,");
            let _ = writeln!(json, "    \"parallel_speedup\": null");
        }
    }
    json.push_str("  },\n");
    json.push_str("  \"intra_run\": {\n");
    let _ = writeln!(json, "    \"wpus\": {intra_wpus},");
    let _ = writeln!(json, "    \"intra_run_threads\": {intra_threads},");
    let _ = writeln!(json, "    \"serial_seconds\": {intra_serial:.4},");
    let _ = writeln!(json, "    \"parallel_seconds\": {intra_parallel:.4},");
    let _ = writeln!(json, "    \"parallel_speedup\": {intra_speedup:.4},");
    let _ = writeln!(json, "    \"cycles_match\": true");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");
}
