//! Compares two `BENCH_simspeed.json` files and reports per-row throughput
//! deltas, flagging regressions beyond a threshold.
//!
//! ```text
//! cargo run --release --bin perf-diff -- OLD.json NEW.json [--max-regress PCT]
//! ```
//!
//! Rows are matched by `(bench, policy)`. A row regresses when its new
//! `mcycles_per_sec` or `minsts_per_sec` falls more than `PCT` percent
//! below the old value (default 20). Rows present in only one of the two
//! files are listed (`gone` / `new`) rather than dropped. The fig13 sweep
//! wall-clock times are compared the same way (lower is better there).
//! Exit status is nonzero when any row regresses, so CI can run this
//! advisorily or as a gate.
//!
//! The parser is purpose-built for the writer in `simspeed.rs` — a flat
//! scan for string/number fields inside `{...}` objects — not a general
//! JSON reader; the repo builds offline with no serialization dependency.

use std::fmt::Write as _;
use std::process::ExitCode;

/// One throughput row pulled out of a report.
#[derive(Debug, Clone)]
struct Row {
    bench: String,
    policy: String,
    mcyc: f64,
    minst: f64,
}

/// The fields of a report that the diff consumes.
#[derive(Debug, Default)]
struct Report {
    rows: Vec<Row>,
    serial_seconds: Option<f64>,
    parallel_seconds: Option<f64>,
    intra_serial_seconds: Option<f64>,
    intra_speedup: Option<f64>,
}

/// Extracts `"key": "value"` from one JSON object body.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key": <number>` from one JSON object body.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Splits the `"throughput": [...]` array into per-row object bodies.
fn throughput_objects(json: &str) -> Vec<&str> {
    let Some(start) = json.find("\"throughput\":") else {
        return Vec::new();
    };
    let rest = &json[start..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest.find(']') else {
        return Vec::new();
    };
    let body = &rest[open + 1..close];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&body[obj_start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

fn parse_report(json: &str) -> Report {
    let rows = throughput_objects(json)
        .into_iter()
        .filter_map(|obj| {
            Some(Row {
                bench: str_field(obj, "bench")?,
                policy: str_field(obj, "policy")?,
                mcyc: num_field(obj, "mcycles_per_sec")?,
                minst: num_field(obj, "minsts_per_sec")?,
            })
        })
        .collect();
    let sweep = json.find("\"fig13_sweep\":").map(|i| &json[i..]);
    let intra = json.find("\"intra_run\":").map(|i| &json[i..]);
    Report {
        rows,
        serial_seconds: sweep.and_then(|s| num_field(s, "serial_seconds")),
        parallel_seconds: sweep.and_then(|s| num_field(s, "parallel_seconds")),
        intra_serial_seconds: intra.and_then(|s| num_field(s, "serial_seconds")),
        intra_speedup: intra.and_then(|s| num_field(s, "parallel_speedup")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress = 20.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regress" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--max-regress needs a numeric percentage");
                    return ExitCode::from(2);
                };
                max_regress = v;
            }
            _ => paths.push(a.clone()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: perf-diff OLD.json NEW.json [--max-regress PCT]");
        return ExitCode::from(2);
    }
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let old = parse_report(&read(&paths[0]));
    let new = parse_report(&read(&paths[1]));
    if old.rows.is_empty() || new.rows.is_empty() {
        eprintln!(
            "no throughput rows parsed (old: {}, new: {})",
            old.rows.len(),
            new.rows.len()
        );
        return ExitCode::from(2);
    }

    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:8} {:16} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "bench", "policy", "old Mc/s", "new Mc/s", "delta", "old Mi/s", "new Mi/s", "delta"
    );
    let mut regressions = Vec::new();
    for o in &old.rows {
        let Some(n) = new
            .rows
            .iter()
            .find(|n| n.bench == o.bench && n.policy == o.policy)
        else {
            let _ = writeln!(
                table,
                "{:8} {:16} {:>10.3} {:>10} {:>8} {:>10.3} {:>10} {:>8}",
                o.bench, o.policy, o.mcyc, "-", "gone", o.minst, "-", "gone"
            );
            continue;
        };
        let cyc_pct = (n.mcyc / o.mcyc - 1.0) * 100.0;
        let inst_pct = (n.minst / o.minst - 1.0) * 100.0;
        let _ = writeln!(
            table,
            "{:8} {:16} {:>10.3} {:>10.3} {:>+7.1}% {:>10.3} {:>10.3} {:>+7.1}%",
            o.bench, o.policy, o.mcyc, n.mcyc, cyc_pct, o.minst, n.minst, inst_pct
        );
        if cyc_pct < -max_regress {
            regressions.push(format!("{} {}: {:+.1}% Mcyc/s", o.bench, o.policy, cyc_pct));
        }
        if inst_pct < -max_regress {
            regressions.push(format!(
                "{} {}: {:+.1}% Minst/s",
                o.bench, o.policy, inst_pct
            ));
        }
    }
    // Rows only the new report has — surfaced, not silently dropped.
    for n in &new.rows {
        if !old
            .rows
            .iter()
            .any(|o| o.bench == n.bench && o.policy == n.policy)
        {
            let _ = writeln!(
                table,
                "{:8} {:16} {:>10} {:>10.3} {:>8} {:>10} {:>10.3} {:>8}",
                n.bench, n.policy, "-", n.mcyc, "new", "-", n.minst, "new"
            );
        }
    }
    // Wall clock: lower is better, so a regression is time growing.
    for (name, ov, nv) in [
        ("fig13 serial", old.serial_seconds, new.serial_seconds),
        ("fig13 parallel", old.parallel_seconds, new.parallel_seconds),
        (
            "intra-run serial",
            old.intra_serial_seconds,
            new.intra_serial_seconds,
        ),
    ] {
        if let (Some(ov), Some(nv)) = (ov, nv) {
            let pct = (nv / ov - 1.0) * 100.0;
            let _ = writeln!(table, "{name:25} {ov:>8.2}s {nv:>8.2}s {pct:>+7.1}%");
            if pct > max_regress {
                regressions.push(format!("{name}: {pct:+.1}% wall clock"));
            }
        }
    }
    // Intra-run speedup: higher is better, so a regression is it dropping.
    if let (Some(ov), Some(nv)) = (old.intra_speedup, new.intra_speedup) {
        let pct = (nv / ov - 1.0) * 100.0;
        let _ = writeln!(
            table,
            "{:25} {ov:>8.2}x {nv:>8.2}x {pct:>+7.1}%",
            "intra-run speedup"
        );
        if pct < -max_regress {
            regressions.push(format!("intra-run speedup: {pct:+.1}%"));
        }
    }
    print!("{table}");
    if regressions.is_empty() {
        println!("ok: no row regressed more than {max_regress}%");
        ExitCode::SUCCESS
    } else {
        println!("REGRESSIONS (threshold {max_regress}%):");
        for r in &regressions {
            println!("  {r}");
        }
        ExitCode::FAILURE
    }
}
