//! Command-line driver for the DWS simulator.
//!
//! ```text
//! dws-cli list
//! dws-cli run     --bench Merge --policy revive [options]
//! dws-cli compare --bench Merge [options]
//! dws-cli lint    [--kernel <name> | --all] [--deny-warnings] [--json]
//! dws-cli asm     <kernel.asm> [--threads N] [--mem-kb K] [--policy P] [options]
//! dws-cli opt     <kernel.asm> --meld [--out FILE] [--deny-warnings] [--quiet]
//! dws-cli fuzz    [--seeds N] [--seed-start N] [--policy P] [--budget-ms MS]
//!                 [--max-cycles N] [--minimize] [--json] [--verbose]
//!
//! options:
//!   --scale test|bench|paper   input size            (default bench)
//!   --wpus N                   WPU count              (default 4)
//!   --width N                  SIMD width             (default 16)
//!   --warps N                  warps per WPU          (default 4)
//!   --slots N                  scheduler slots        (default 2*warps)
//!   --wst N                    warp-split table size  (default 16)
//!   --l2-lat CYCLES            L2 lookup latency      (default 30)
//!   --l1d-kb KB                L1 D-cache capacity    (default 32)
//!   --assoc N|full             L1 D-cache ways        (default 8)
//!   --seed N                   workload seed          (default 42)
//!   --csv                      machine-readable one-line-per-run output
//! ```

//! Exit codes: 0 success, 1 generic failure (usage, I/O, wrong result),
//! 3 timeout, 4 deadlock, 5 livelock, 6 host-budget, 7 fuzz-failures-found
//! — so harnesses can triage a failed run without parsing stderr.
//! Structured aborts also print their machine-state snapshot
//! ([`dws::sim::DiagnosticReport`]).

use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{Machine, SimConfig, SimError};
use std::process::ExitCode;

/// A CLI failure: a structured simulation abort (distinct exit code, with
/// the machine-state snapshot printed) or a plain usage/build error.
enum CliError {
    Sim(SimError),
    Other(String),
}

/// Reports `e` on stderr and maps it to the documented exit code.
fn fail(e: &CliError) -> ExitCode {
    let code = match e {
        CliError::Sim(s) => {
            eprintln!("error: {s}");
            if let SimError::Timeout { diagnostics, .. }
            | SimError::Deadlock { diagnostics, .. }
            | SimError::Livelock { diagnostics, .. } = s
            {
                eprint!("{diagnostics}");
            }
            match s {
                SimError::Timeout { .. } => 3,
                SimError::Deadlock { .. } => 4,
                SimError::Livelock { .. } => 5,
                SimError::HostBudget { .. } => 6,
                _ => 1,
            }
        }
        CliError::Other(msg) => {
            eprintln!("error: {msg}");
            1
        }
    };
    ExitCode::from(code)
}

fn policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("conv", Policy::conventional()),
        ("branch-stack", Policy::dws_branch_stack()),
        ("branch-only", Policy::dws_branch_only()),
        ("mem-only", Policy::dws_mem_only()),
        ("aggress", Policy::dws_aggress()),
        ("lazy", Policy::dws_lazy()),
        ("revive", Policy::dws_revive()),
        ("throttled", Policy::dws_revive_throttled()),
        (
            "branch-limited",
            Policy::dws_branch_limited(dws::core::MemSplit::Revive),
        ),
        ("slip", Policy::slip()),
        ("slip-bypass", Policy::slip_branch_bypass()),
    ]
}

#[derive(Debug)]
struct Options {
    bench: Benchmark,
    policy: Option<Policy>,
    scale: Scale,
    wpus: usize,
    width: usize,
    warps: usize,
    slots: Option<usize>,
    wst: usize,
    l2_lat: u64,
    l1d_kb: u64,
    assoc: Option<usize>, // None = full
    assoc_given: bool,
    seed: u64,
    csv: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            bench: Benchmark::Merge,
            policy: None,
            scale: Scale::Bench,
            wpus: 4,
            width: 16,
            warps: 4,
            slots: None,
            wst: 16,
            l2_lat: 30,
            l1d_kb: 32,
            assoc: Some(8),
            assoc_given: false,
            seed: 42,
            csv: false,
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" => {
                let v = val()?;
                o.bench = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(v))
                    .ok_or_else(|| format!("unknown benchmark '{v}'"))?;
            }
            "--policy" => {
                let v = val()?;
                o.policy = Some(
                    policies()
                        .into_iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown policy '{v}'"))?
                        .1,
                );
            }
            "--scale" => {
                o.scale = match val()?.as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--wpus" => o.wpus = val()?.parse().map_err(|e| format!("--wpus: {e}"))?,
            "--width" => o.width = val()?.parse().map_err(|e| format!("--width: {e}"))?,
            "--warps" => o.warps = val()?.parse().map_err(|e| format!("--warps: {e}"))?,
            "--slots" => o.slots = Some(val()?.parse().map_err(|e| format!("--slots: {e}"))?),
            "--wst" => o.wst = val()?.parse().map_err(|e| format!("--wst: {e}"))?,
            "--l2-lat" => o.l2_lat = val()?.parse().map_err(|e| format!("--l2-lat: {e}"))?,
            "--l1d-kb" => o.l1d_kb = val()?.parse().map_err(|e| format!("--l1d-kb: {e}"))?,
            "--assoc" => {
                let v = val()?;
                o.assoc_given = true;
                o.assoc = if v == "full" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("--assoc: {e}"))?)
                };
            }
            "--seed" => o.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--csv" => o.csv = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(o)
}

fn config(o: &Options, policy: Policy) -> SimConfig {
    let mut cfg = SimConfig::paper(policy)
        .with_wpus(o.wpus)
        .with_width(o.width)
        .with_warps(o.warps);
    if let Some(s) = o.slots {
        cfg.sched_slots = s;
    }
    cfg.wst_entries = o.wst;
    cfg.mem.l2.hit_latency = o.l2_lat;
    cfg.mem.l1d = cfg.mem.l1d.with_size(o.l1d_kb * 1024);
    if o.assoc_given {
        cfg.mem.l1d = match o.assoc {
            Some(a) => cfg.mem.l1d.with_assoc(a),
            None => cfg.mem.l1d.fully_associative(),
        };
    }
    cfg
}

fn run_one(o: &Options, policy: Policy, baseline: Option<u64>) -> Result<u64, CliError> {
    let spec = o.bench.build(o.scale, o.seed);
    let cfg = config(o, policy);
    let r = Machine::run(&cfg, &spec).map_err(CliError::Sim)?;
    spec.verify(&r.memory).map_err(|message| {
        CliError::Sim(SimError::VerifyFailed {
            label: format!("{}/{}", o.bench.name(), policy.paper_name()),
            message,
        })
    })?;
    if o.csv {
        println!(
            "{},{},{},{},{},{},{:.4},{:.4},{:.2},{},{},{:.4e}",
            o.bench.name(),
            policy.paper_name(),
            r.cycles,
            r.wpu.warp_insts.get(),
            r.mem.l1d_misses.get(),
            r.mem.dram_accesses.get(),
            r.busy_fraction(),
            r.mem_stall_fraction(),
            r.avg_simd_width(),
            r.wpu.branch_splits.get() + r.wpu.mem_splits.get() + r.wpu.revive_splits.get(),
            r.wpu.pc_merges.get() + r.wpu.stack_merges.get(),
            r.energy.total(),
        );
    } else {
        println!("\n{} / {}", o.bench.name(), policy.paper_name());
        println!("  cycles            {:>14}", r.cycles);
        if let Some(b) = baseline {
            println!("  speedup vs Conv   {:>14.3}", b as f64 / r.cycles as f64);
        }
        println!("  warp instructions {:>14}", r.wpu.warp_insts.get());
        println!("  avg SIMD width    {:>14.2}", r.avg_simd_width());
        println!(
            "  busy / mem-stall  {:>6.1}% / {:.1}%",
            100.0 * r.busy_fraction(),
            100.0 * r.mem_stall_fraction()
        );
        println!(
            "  L1D misses        {:>14}  (DRAM {})",
            r.mem.l1d_misses.get(),
            r.mem.dram_accesses.get()
        );
        println!(
            "  splits / merges   {:>7} / {}",
            r.wpu.branch_splits.get() + r.wpu.mem_splits.get() + r.wpu.revive_splits.get(),
            r.wpu.pc_merges.get() + r.wpu.stack_merges.get()
        );
        println!("  energy            {:>14.3} mJ", r.energy.total() * 1e3);
    }
    Ok(r.cycles)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: dws-cli <list|run|compare> [options]; see --help in source");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "list" => {
            println!("benchmarks:");
            for b in Benchmark::ALL {
                println!("  {}", b.name());
            }
            println!("policies:");
            for (n, p) in policies() {
                println!("  {:14} ({})", n, p.paper_name());
            }
            ExitCode::SUCCESS
        }
        "run" => match parse(&args[1..]) {
            Ok(o) => {
                let policy = o.policy.unwrap_or_else(Policy::dws_revive);
                match run_one(&o, policy, None) {
                    Ok(_) => ExitCode::SUCCESS,
                    Err(e) => fail(&e),
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "compare" => match parse(&args[1..]) {
            Ok(o) => {
                if o.csv {
                    println!(
                        "benchmark,policy,cycles,warp_insts,l1d_misses,dram,busy,mem_stall,\
                         width,splits,merges,energy_j"
                    );
                }
                let mut baseline = None;
                for (_, policy) in policies() {
                    match run_one(&o, policy, baseline) {
                        Ok(cycles) => {
                            baseline.get_or_insert(cycles);
                        }
                        Err(e) => return fail(&e),
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "lint" => match run_lint(&args[1..]) {
            Ok(clean) => {
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "fuzz" => match run_fuzz(&args[1..]) {
            Ok(clean) => {
                if clean {
                    ExitCode::SUCCESS
                } else {
                    // Distinct from generic failure: the harness ran fine
                    // and found real oracle divergences.
                    ExitCode::from(7)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "asm" => {
            // dws-cli asm <file> [--threads N] [--mem-kb K] [--policy P] ...
            let Some(path) = args.get(1) else {
                eprintln!("usage: dws-cli asm <kernel.asm> [options]");
                return ExitCode::FAILURE;
            };
            let mut threads = 64u64;
            let mut mem_kb = 256u64;
            let mut rest = Vec::new();
            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--threads" => {
                        threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(threads);
                    }
                    "--mem-kb" => {
                        mem_kb = it.next().and_then(|v| v.parse().ok()).unwrap_or(mem_kb);
                    }
                    other => rest.push(other.to_string()),
                }
            }
            match run_asm(path, threads, mem_kb, &rest) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "opt" => match run_opt(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        other => {
            eprintln!("unknown command '{other}' (try list, run, compare, lint, asm, opt, fuzz)");
            ExitCode::FAILURE
        }
    }
}

/// Minimal JSON string escaping for the `--json` outputs.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `dws-cli lint [--kernel <name> | --all] [--deny-warnings] [--verbose]
/// [--json]`
///
/// Statically verifies the selected kernels under the paper's machine
/// configuration at every input scale: the six IR passes (CFG shape,
/// re-convergence, def-use, memory bounds, divergence, melding advisory)
/// plus the declared buffer layout against the actual allocation. Returns
/// whether the run was clean: errors always fail; warnings fail under
/// `--deny-warnings`. `--json` renders the full structured report instead
/// of the table — fixed field order, no wall-clock fields, and a config
/// fingerprint, so identical lint runs are byte-identical (like the fuzz
/// reports).
fn run_lint(args: &[String]) -> Result<bool, String> {
    use dws::engine::hash::FastHasher;
    use dws::kernels::Scale;
    use dws::sim::lint_spec;
    use std::fmt::Write as _;
    use std::hash::Hasher as _;

    let mut benches: Vec<Benchmark> = Vec::new();
    let mut deny_warnings = false;
    let mut verbose = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--all" => benches = Benchmark::ALL.to_vec(),
            "--verbose" => verbose = true,
            "--json" => json = true,
            "--kernel" => {
                let v = it.next().ok_or("--kernel needs a value")?;
                benches.push(
                    Benchmark::ALL
                        .into_iter()
                        .find(|b| b.name().eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown benchmark '{v}'"))?,
                );
            }
            "--deny-warnings" => deny_warnings = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if benches.is_empty() {
        return Err("select kernels with --kernel <name> or --all".into());
    }

    // Self-describing fingerprint, mirroring FuzzConfig::config_hash: two
    // reports with equal hashes linted the same kernels the same way.
    let mut h = FastHasher::default();
    for b in &benches {
        h.write(b.name().as_bytes());
    }
    h.write_u64(u64::from(deny_warnings));
    let config_hash = h.finish();

    let cfg = SimConfig::paper(dws::core::Policy::dws_revive());
    let mut clean = true;
    let mut out = String::new();
    if json {
        let _ = write!(
            out,
            "{{\"config_hash\":\"{config_hash:#018x}\",\"deny_warnings\":{deny_warnings},\"kernels\":["
        );
    }
    let mut first = true;
    for bench in benches {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let spec = bench.build(scale, 42);
            let report = lint_spec(&cfg, &spec);
            let failed = report.has_errors()
                || (deny_warnings && report.count(dws::isa::Severity::Warning) > 0);
            clean &= !failed;
            if json {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"kernel\":\"{}\",\"scale\":\"{:?}\",\"insts\":{},\"branches\":{},\
                     \"errors\":{},\"warnings\":{},\"notes\":{},\"clean\":{},\"diagnostics\":[",
                    bench.name(),
                    scale,
                    spec.program.len(),
                    report.stats.branches,
                    report.count(dws::isa::Severity::Error),
                    report.count(dws::isa::Severity::Warning),
                    report.count(dws::isa::Severity::Note),
                    !failed,
                );
                for (i, d) in report.diagnostics.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"block\":{},\"message\":\"{}\"}}",
                        d.code,
                        d.severity,
                        d.pc.map_or("null".to_string(), |p| p.to_string()),
                        d.block.map_or("null".to_string(), |b| b.to_string()),
                        json_escape(&d.message),
                    );
                }
                out.push_str("]}");
                continue;
            }
            let stats = &report.stats;
            println!(
                "{:8} {:6?} {:4} insts  {:3} branches ({} divergent, {} subdividable)  \
                 stack<=>{}  {}",
                bench.name(),
                scale,
                spec.program.len(),
                stats.branches,
                stats.divergent_branches,
                stats.subdividable_branches,
                stats.reconv_stack_bound(),
                report.summary(),
            );
            // Notes (e.g. unproven bounds, meldable regions) are
            // informational; keep the gate output to actionable findings
            // unless asked.
            let actionable = report
                .diagnostics
                .iter()
                .any(|d| d.severity >= dws::isa::Severity::Warning);
            if verbose || actionable {
                print!("{report}");
            }
        }
    }
    if json {
        out.push_str("]}");
        println!("{out}");
    }
    Ok(clean)
}

/// `dws-cli opt <kernel.asm> --meld [--out FILE] [--deny-warnings]
/// [--quiet]`
///
/// Runs the control-flow melding transform ([`dws::isa::meld`]) on an
/// assembly kernel: every profitable divergent diamond is rewritten into
/// predicated straight-line (select/masked-access) code, the six-pass
/// verifier re-checks the output, and the result is printed as assembly
/// (or written to `--out`). The summary lists each rewrite and the
/// advisory diagnostics for diamonds that did *not* meld. Fails under
/// `--deny-warnings` if the transformed kernel carries any warning.
fn run_opt(args: &[String]) -> Result<(), CliError> {
    use dws::isa::{parse_asm, render_asm, Severity};

    let mut path: Option<&String> = None;
    let mut do_meld = false;
    let mut out_file: Option<&String> = None;
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--meld" => do_meld = true,
            "--deny-warnings" => deny_warnings = true,
            "--quiet" => quiet = true,
            "--out" => {
                out_file = Some(
                    it.next()
                        .ok_or_else(|| CliError::Other("--out needs a value".into()))?,
                );
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(arg),
            other => return Err(CliError::Other(format!("unknown option '{other}'"))),
        }
    }
    let path = path.ok_or_else(|| {
        CliError::Other("usage: dws-cli opt <kernel.asm> --meld [--out FILE]".into())
    })?;
    if !do_meld {
        return Err(CliError::Other(
            "opt requires a transform flag (currently: --meld)".into(),
        ));
    }

    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
    let program = parse_asm(&text).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
    let before = program.len();
    let outcome = dws::isa::meld(program.insts())
        .map_err(|report| CliError::Other(format!("{path}: kernel rejected:\n{report}")))?;

    if !quiet {
        eprintln!(
            "{path}: {} -> {} instructions, {} diamond(s) melded",
            before,
            outcome.insts.len(),
            outcome.applied.len(),
        );
        for a in &outcome.applied {
            eprintln!(
                "  melded diamond at pc {} (join {}): {} issue slot(s) saved",
                a.branch_pc, a.join_pc, a.saved
            );
        }
        // Surface the advisory pass on the *output*: any DWS0602 left is a
        // diamond that stayed divergent, with the reason why.
        for d in &outcome.report.diagnostics {
            if matches!(
                d.code,
                dws::isa::DwsLintCode::MeldableRegion | dws::isa::DwsLintCode::MeldRejected
            ) {
                eprintln!("  {d}");
            }
        }
    }
    if deny_warnings && outcome.report.count(Severity::Warning) > 0 {
        return Err(CliError::Other(format!(
            "{path}: melded output carries warnings under --deny-warnings:\n{}",
            outcome.report
        )));
    }

    let melded = dws::isa::Program::from_insts(outcome.insts)
        .map_err(|e| CliError::Other(format!("{path}: melded output rejected: {e}")))?;
    let asm = render_asm(&melded);
    match out_file {
        Some(f) => std::fs::write(f, &asm).map_err(|e| CliError::Other(format!("{f}: {e}")))?,
        None => print!("{asm}"),
    }
    Ok(())
}

/// `dws-cli fuzz [--seeds N] [--seed-start N] [--policy P] [--budget-ms MS]
/// [--max-cycles N] [--minimize] [--json] [--verbose]`
///
/// Runs the verifier-guided differential fuzzing campaign: each seed grows
/// a random verifier-accepted kernel and checks it across the oracle axes
/// (all scheduling policies vs the reference interpreter, stepped vs
/// event-driven, parallel vs serial, legacy engine vs µop, chaos vs
/// zero-fault). `--policy` narrows the policy axis to one named policy;
/// `--minimize` delta-debugs each failure down to a minimal reproducer.
/// Returns whether the campaign was clean; failures exit with code 7.
fn run_fuzz(args: &[String]) -> Result<bool, String> {
    use dws::sim::{run_campaign, FuzzConfig};

    let mut cfg = FuzzConfig::default();
    let mut json = false;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => cfg.seeds = val()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--seed-start" => {
                cfg.seed_start = val()?.parse().map_err(|e| format!("--seed-start: {e}"))?;
            }
            "--policy" => {
                let v = val()?;
                cfg.policy = Some(
                    policies()
                        .into_iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown policy '{v}'"))?
                        .1,
                );
            }
            "--budget-ms" => {
                let ms: u64 = val()?.parse().map_err(|e| format!("--budget-ms: {e}"))?;
                cfg.job_budget = Some(std::time::Duration::from_millis(ms.max(1)));
            }
            "--max-cycles" => {
                cfg.max_cycles = val()?.parse().map_err(|e| format!("--max-cycles: {e}"))?;
            }
            "--max-stmts" => {
                cfg.gen.max_stmts = val()?.parse().map_err(|e| format!("--max-stmts: {e}"))?;
            }
            "--minimize" => cfg.minimize = true,
            "--json" => json = true,
            "--verbose" => verbose = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if cfg.seeds == 0 {
        return Err("--seeds must be >= 1".into());
    }

    let report = run_campaign(&cfg);
    if json {
        println!("{}", report.to_json());
        return Ok(report.clean());
    }

    println!(
        "fuzz: {} seed(s) from {} on the {} policy axis (config 0x{:016x}): {}",
        report.seeds,
        report.seed_start,
        report.policy.unwrap_or("full"),
        report.config_hash,
        if report.clean() {
            "clean".to_string()
        } else {
            format!("{} failure(s)", report.failures.len())
        },
    );
    for f in &report.failures {
        println!(
            "  seed {:<6} {:28} {:>4} insts  {}",
            f.seed,
            f.class.label(),
            f.insts,
            f.message
        );
        if let Some(m) = &f.minimized {
            println!(
                "    minimized reproducer: {} insts, {} statement(s)",
                m.insts,
                m.ast.stmt_count()
            );
            if verbose {
                for line in m.asm.lines() {
                    println!("      {line}");
                }
                // The minimized kernel still passes verification (the
                // minimizer re-verifies every step); show its remaining
                // structured findings (warnings/notes) for triage.
                if let Ok(program) = m.ast.compile() {
                    let lint = program.lint(&dws::isa::VerifyOptions::default());
                    for line in lint.rendered().lines() {
                        println!("      {line}");
                    }
                }
            }
        }
        println!("    replay: {}", f.replay);
    }
    Ok(report.clean())
}

/// Assembles and simulates a textual kernel on a machine sized for it.
fn run_asm(path: &str, threads: u64, mem_kb: u64, opts: &[String]) -> Result<(), CliError> {
    use dws::isa::{parse_asm, VecMemory};
    use dws::kernels::KernelSpec;

    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
    let program = parse_asm(&text).map_err(|e| {
        if e.diagnostics.is_empty() {
            // Pure syntax error: the one-liner carries everything.
            CliError::Other(format!("{path}: {e}"))
        } else {
            // Verifier rejection: the message is the full rustc-style
            // rendering; print it whole, then summarize on one line.
            eprintln!("{}", e.message);
            CliError::Other(format!(
                "{path}: kernel rejected by the verifier ({} finding(s))",
                e.diagnostics.len()
            ))
        }
    })?;
    println!(
        "{path}: {} instructions, {} conditional branches ({} subdividable)",
        program.len(),
        program.branches().count(),
        program.branches().filter(|(_, i)| i.subdividable).count()
    );
    let o = parse(opts).map_err(CliError::Other)?;
    let memory = VecMemory::new(mem_kb * 1024);
    let spec = KernelSpec::new("asm-kernel", program, memory, |_| Ok(()));
    // Size the machine so it has exactly `threads` hardware threads.
    let mut cfg = config(&o, o.policy.unwrap_or_else(dws::core::Policy::dws_revive));
    let per_wpu = (o.width * o.warps) as u64;
    cfg.n_wpus = (threads.div_ceil(per_wpu)).max(1) as usize;
    cfg.mem.n_l1s = cfg.n_wpus;
    let r = dws::sim::Machine::run(&cfg, &spec).map_err(CliError::Sim)?;
    println!(
        "cycles {}  warp-insts {}  width {:.2}  busy {:.1}%  mem-stall {:.1}%  misses {}",
        r.cycles,
        r.wpu.warp_insts.get(),
        r.avg_simd_width(),
        100.0 * r.busy_fraction(),
        100.0 * r.mem_stall_fraction(),
        r.mem.l1d_misses.get()
    );
    // Dump the first words of memory so simple kernels can show results.
    let words: Vec<i64> = (0..8).map(|i| r.memory.read_i64(i * 8)).collect();
    println!("mem[0..8] = {words:?}");
    Ok(())
}
