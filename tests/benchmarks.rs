//! Repository-level integration tests: every benchmark of Table 2 runs on
//! the paper's machine under the key policies and produces functionally
//! correct results.

use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{Machine, SimConfig};

fn key_policies() -> Vec<Policy> {
    vec![
        Policy::conventional(),
        Policy::dws_revive(),
        Policy::slip_branch_bypass(),
    ]
}

/// Runs one benchmark under one policy on a 2-WPU machine (coherence
/// exercised, runtime kept test-friendly) and verifies the output.
fn run_and_verify(bench: Benchmark, policy: Policy) -> dws::sim::RunResult {
    let spec = bench.build(Scale::Test, 42);
    let cfg = SimConfig::paper(policy).with_wpus(2);
    let result = Machine::run(&cfg, &spec)
        .unwrap_or_else(|e| panic!("{bench} under {} failed: {e}", policy.paper_name()));
    spec.verify(&result.memory).unwrap_or_else(|e| {
        panic!(
            "{bench} under {} produced wrong results: {e}",
            policy.paper_name()
        )
    });
    result
}

macro_rules! bench_tests {
    ($($name:ident => $bench:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                for policy in key_policies() {
                    let r = run_and_verify($bench, policy);
                    assert!(r.cycles > 0);
                    assert!(r.wpu.warp_insts.get() > 0);
                }
            }
        )+
    };
}

bench_tests! {
    fft_runs_correctly_under_key_policies => Benchmark::Fft,
    filter_runs_correctly_under_key_policies => Benchmark::Filter,
    hotspot_runs_correctly_under_key_policies => Benchmark::HotSpot,
    lu_runs_correctly_under_key_policies => Benchmark::Lu,
    merge_runs_correctly_under_key_policies => Benchmark::Merge,
    short_runs_correctly_under_key_policies => Benchmark::Short,
    kmeans_runs_correctly_under_key_policies => Benchmark::KMeans,
    svm_runs_correctly_under_key_policies => Benchmark::Svm,
}

#[test]
fn simulation_is_deterministic() {
    let spec = Benchmark::Merge.build(Scale::Test, 7);
    let cfg = SimConfig::paper(Policy::dws_revive()).with_wpus(2);
    let a = Machine::run(&cfg, &spec).unwrap();
    let b = Machine::run(&cfg, &spec).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.wpu.warp_insts.get(), b.wpu.warp_insts.get());
    assert_eq!(a.mem.l1d_misses.get(), b.mem.l1d_misses.get());
    assert_eq!(a.memory.words(), b.memory.words());
    assert_eq!(a.per_thread_misses, b.per_thread_misses);
}

#[test]
fn different_seeds_change_data_not_correctness() {
    for seed in [1u64, 99, 12345] {
        let spec = Benchmark::Short.build(Scale::Test, seed);
        let cfg = SimConfig::paper(Policy::dws_revive()).with_wpus(1);
        let r = Machine::run(&cfg, &spec).unwrap();
        spec.verify(&r.memory).unwrap();
    }
}

#[test]
fn divergence_characterization_matches_paper_shape() {
    // Table 1's qualitative shape: Merge is the most branch-divergent
    // benchmark; FFT has (almost) no divergent branches; most benchmarks
    // show a high fraction of divergent memory accesses.
    let cfg = SimConfig::paper(Policy::conventional()).with_wpus(1);
    let frac = |b: Benchmark| {
        let spec = b.build(Scale::Test, 42);
        let r = Machine::run(&cfg, &spec).unwrap();
        (
            r.wpu.divergent_branch_fraction().unwrap_or(0.0),
            r.wpu.divergent_access_fraction().unwrap_or(0.0),
        )
    };
    let (merge_br, _) = frac(Benchmark::Merge);
    let (fft_br, fft_mem) = frac(Benchmark::Fft);
    let (short_br, _) = frac(Benchmark::Short);
    assert!(
        merge_br > 0.05,
        "Merge should be branch-divergent, got {merge_br}"
    );
    assert!(
        short_br > 0.01,
        "Short should be branch-divergent, got {short_br}"
    );
    assert!(fft_br < merge_br, "FFT diverges less than Merge");
    assert!(
        fft_mem > 0.3,
        "FFT's butterfly gathers should be memory-divergent, got {fft_mem}"
    );
}

#[test]
fn dws_does_not_degrade_any_benchmark_badly() {
    // The paper's robustness claim — DWS.ReviveSplit "shows no performance
    // degradation on the benchmarks that were tested" — holds in the
    // paper's regime: inputs large enough that WPUs spend most cycles
    // waiting for memory (the fig13_schemes bench target checks that
    // regime). The Test-scale inputs here are cache-resident and
    // compute-bound, where subdivision has nothing to hide and only costs
    // issue slots, so this test only guards against *pathological*
    // degradation.
    let mut speedups = Vec::new();
    for bench in Benchmark::ALL {
        let spec = bench.build(Scale::Test, 42);
        let conv = Machine::run(
            &SimConfig::paper(Policy::conventional()).with_wpus(2),
            &spec,
        )
        .unwrap();
        let dws =
            Machine::run(&SimConfig::paper(Policy::dws_revive()).with_wpus(2), &spec).unwrap();
        let s = dws.speedup_over(&conv);
        speedups.push((bench, s));
    }
    for (bench, s) in &speedups {
        assert!(
            *s > 0.70,
            "{bench} degraded pathologically under DWS: {s:.3}x (all: {speedups:?})"
        );
    }
    let hmean =
        dws::engine::stats::harmonic_mean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>())
            .unwrap();
    assert!(
        hmean > 0.90,
        "DWS collapsed on average even at compute-bound test scale; \
         h-mean = {hmean:.3} ({speedups:?})"
    );
}

#[test]
fn dws_reduces_memory_stall_and_raises_mlp_on_merge() {
    // The paper's central mechanism claim (Sections 4.1, 5.1): subdivision
    // converts stall cycles into overlapped memory requests. Merge is the
    // most divergent benchmark, so the effect is visible even at test
    // scale: the memory-stall fraction must not grow, and the average
    // number of in-flight misses (MLP) must not shrink.
    let spec = Benchmark::Merge.build(Scale::Test, 42);
    let conv = Machine::run(&SimConfig::paper(Policy::conventional()), &spec).unwrap();
    let dws = Machine::run(&SimConfig::paper(Policy::dws_revive()), &spec).unwrap();
    assert!(
        dws.mem_stall_fraction() <= conv.mem_stall_fraction() + 0.02,
        "DWS stall {:.3} vs Conv {:.3}",
        dws.mem_stall_fraction(),
        conv.mem_stall_fraction()
    );
    assert!(
        dws.avg_mlp() >= 0.9 * conv.avg_mlp(),
        "DWS MLP {:.2} vs Conv {:.2}",
        dws.avg_mlp(),
        conv.avg_mlp()
    );
    // And the split machinery actually engaged.
    assert!(dws.wpu.branch_splits.get() + dws.wpu.mem_splits.get() > 0);
}
