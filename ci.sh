#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs with --offline (the repo has no registry dependencies),
# so it works in air-gapped containers.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings + pedantic subset, all targets) =="
# Beyond the default lints, an allow-listed clippy::pedantic subset the
# codebase is verified clean under (kept explicit so new pedantic lints
# don't break CI when the toolchain updates).
cargo clippy --workspace --release --benches --examples --tests --offline -- -D warnings \
  -D clippy::uninlined_format_args \
  -D clippy::semicolon_if_nothing_returned \
  -D clippy::redundant_closure_for_method_calls \
  -D clippy::unnested_or_patterns \
  -D clippy::manual_let_else \
  -D clippy::ignored_unit_patterns \
  -D clippy::needless_continue \
  -D clippy::explicit_iter_loop \
  -D clippy::inefficient_to_string

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== kernel lint gate (static verifier, deny warnings) =="
# Every shipped kernel at every input scale must pass the six-pass static
# verifier (CFG shape, re-convergence, def-use, memory bounds, divergence,
# melding advisory) plus the buffer-layout cross-check with zero errors and
# zero warnings (DWS06xx meld advisories are notes and never gate).
cargo run -q --release --offline --bin dws-cli -- lint --all --deny-warnings

echo "== meld transform gate (opt --meld output must stay lint-clean) =="
# The control-flow melding pass must fire on the checked-in fuzz
# reproducer and its predicated straight-line output must re-verify with
# zero errors and zero warnings.
cargo run -q --release --offline --bin dws-cli -- \
  opt crates/sim/tests/corpus/seed-00000-meldable-poly.asm \
  --meld --deny-warnings --quiet > /dev/null

echo "== cargo test (tier-1) =="
cargo test -q --release --workspace --offline

echo "== tier-1 equivalence guards (named, release) =="
# The event-driven run loop and the incremental scheduler must stay
# bit-identical to their exhaustive counterparts; run these by name so a
# test-filter mistake can never silently drop them from the gate.
cargo test -q --release --offline -p dws-sim --test zero_alloc_steady_state
cargo test -q --release --offline -p dws-sim --test sweep_determinism
cargo test -q --release --offline -p dws-sim --test event_equivalence
cargo test -q --release --offline -p dws-sim --test parallel_equivalence
cargo test -q --release --offline -p dws-core --test random_policies
cargo test -q --release --offline -p dws-core --test uop_differential
cargo test -q --release --offline -p dws-core --test uniform_hints_differential

echo "== tier-1 robustness guards (named, release) =="
# Chaos battery (fault plans x policies, sanitizer forced on) and sweep
# panic isolation — the machine must fail loudly and precisely, never
# hang or take sibling jobs down with it.
cargo test -q --release --offline -p dws-sim --test chaos_invariants
cargo test -q --release --offline -p dws-sim --test sweep_panic_isolation
cargo test -q --release --offline -p dws-sim --test fuzz_harness
cargo test -q --release --offline -p dws-sim --test corpus_replay

echo "== tier-1 transform-equivalence guards (named, release) =="
# Static control-flow melding must be semantics-preserving on the timed
# machine (bit-identity across all policies + chaos plans), profitable
# under the conventional baseline, and lint-clean; the reusable dataflow
# framework must agree with the reference def-use fixpoint everywhere.
cargo test -q --release --offline -p dws-sim --test meld_differential
cargo test -q --release --offline -p dws-isa --test dataflow_differential

echo "== fuzz smoke (differential oracle battery, fixed seeds) =="
# A short verifier-guided fuzz campaign across every oracle axis (all
# policies vs the reference interpreter, stepped vs event-driven, parallel
# vs serial, legacy engine vs µop, chaos vs zero-fault). Must be clean
# (exit 0; 7 = real divergence found) AND byte-identical across two runs —
# the report embeds no wall-clock, so any diff is lost determinism. The
# second run goes through the DWS_WATCHDOG_* env overrides to keep that
# configuration path exercised.
cargo run -q --release --offline --bin dws-cli -- \
  fuzz --seeds 25 --json > fuzz_smoke_a.json
DWS_WATCHDOG_LIVELOCK=200000 DWS_WATCHDOG_HOST_MS=60000 \
  cargo run -q --release --offline --bin dws-cli -- \
  fuzz --seeds 25 --json > fuzz_smoke_b.json
cmp fuzz_smoke_a.json fuzz_smoke_b.json
rm -f fuzz_smoke_a.json fuzz_smoke_b.json

echo "== DWS_SANITIZE=1 release smoke run =="
# One paper-scale simulation with the debug-only scheduler-sync and
# µop-oracle checks promoted into the release binary.
DWS_SANITIZE=1 cargo run -q --release --offline --bin dws-cli -- \
  run --bench Merge --scale test --policy revive > /dev/null

# Advisory perf check: compares the committed simspeed baseline against
# the previous one when a bench run has left it behind. Regressions are
# reported but do not fail CI (host speed varies across machines).
if [[ -f BENCH_simspeed.prev.json && -f BENCH_simspeed.json ]]; then
  echo "== perf-diff (advisory) =="
  cargo run --release --offline --bin perf-diff -- \
    BENCH_simspeed.prev.json BENCH_simspeed.json --max-regress 20 \
    || echo "perf-diff: throughput regressed (advisory only)"
fi

echo "CI OK"
