#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs with --offline (the repo has no registry dependencies),
# so it works in air-gapped containers.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings, all targets) =="
cargo clippy --workspace --release --benches --examples --tests --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test (tier-1) =="
cargo test -q --release --workspace --offline

echo "CI OK"
